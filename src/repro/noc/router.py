"""The 3-stage virtual-channel wormhole router.

Pipeline (paper Sec. III, Garnet-style):

1. **BW + RC** — an arriving flit is written into its VC buffer; a head
   flit computes its route.
2. **VA + SA** — the *pre-VA recovery policy* runs first (the paper's
   addition), then VC allocation grants downstream VCs to new packets and
   switch allocation picks at most one flit per input port and per output
   port.
3. **ST + LT** — granted flits traverse the crossbar and the link,
   arriving at the next router after the link latency.

A flit therefore spends a minimum of 3 cycles per hop.  The router never
mixes packets in a VC buffer and holds a VC from head arrival to tail
departure (wormhole with per-packet VCs), which together with XY routing
keeps the mesh deadlock-free.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.noc.arbiter import RoundRobinArbiter
from repro.noc.input_unit import InputUnit
from repro.noc.link import Channel
from repro.noc.output_unit import UpstreamPort
from repro.noc.policy_api import OutVCState
from repro.noc.topology import port_name

#: Hot-loop constant for the inlined credit check in phase_sa_st.
_ACTIVE = OutVCState.ACTIVE


@dataclasses.dataclass
class InputWiring:
    """An input port with the channels arriving from its upstream."""

    unit: InputUnit
    data_channel: Channel
    control_channel: Channel


@dataclasses.dataclass
class OutputWiring:
    """An output port with the channels arriving back from downstream."""

    upstream: UpstreamPort
    credit_channel: Channel
    down_up_channel: Channel


class Router:
    """One NoC router; the :class:`~repro.noc.network.Network` drives its
    per-cycle phases in lock-step with all other routers.

    Parameters
    ----------
    router_id:
        Node id of the tile this router belongs to.
    inputs, outputs:
        Wiring per connected port id (LOCAL plus the topology links).
    num_vcs:
        Virtual channels per virtual network.
    num_vnets:
        Virtual networks per port (total VCs = ``num_vcs * num_vnets``).
    """

    def __init__(
        self,
        router_id: int,
        inputs: Dict[int, InputWiring],
        outputs: Dict[int, OutputWiring],
        num_vcs: int,
        num_vnets: int = 1,
    ) -> None:
        self.router_id = router_id
        self.inputs = inputs
        self.outputs = outputs
        self.num_vcs = num_vcs
        self.num_vnets = num_vnets
        self.total_vcs = num_vcs * num_vnets
        self.input_ports: List[int] = sorted(inputs)
        self.output_ports: List[int] = sorted(outputs)
        #: Hot-path scan order: (port id, input unit) pairs, saving the
        #: per-cycle wiring-dict lookups in the VA/SA phases.
        self._unit_scan: List[Tuple[int, InputUnit]] = [
            (p, inputs[p].unit) for p in self.input_ports
        ]
        #: Per-(output port, vnet) count of resident packets still
        #: awaiting VA — the paper's ``is_new_traffic_outport_x()`` in
        #: O(1), kept per message class.
        self.va_pending: Dict[int, List[int]] = {
            p: [0] * num_vnets for p in self.output_ports
        }
        self._va_arbiters: Dict[Tuple[int, int], RoundRobinArbiter] = {
            (p, vn): RoundRobinArbiter(len(self.input_ports) * self.total_vcs)
            for p in self.output_ports
            for vn in range(num_vnets)
        }
        self._sa_input_arbiters: Dict[int, RoundRobinArbiter] = {
            p: RoundRobinArbiter(self.total_vcs) for p in self.input_ports
        }
        self._sa_output_arbiters: Dict[int, RoundRobinArbiter] = {
            p: RoundRobinArbiter(len(self.input_ports)) for p in self.output_ports
        }
        self.flits_routed = 0
        #: Set by the network at wiring time: maps an input port to the
        #: Down_Up channel toward its upstream.
        self.down_up_channels: Dict[int, Channel] = {}
        #: Last most-degraded id sent upstream per (input port, vnet).
        self._last_md_sent: Dict[Tuple[int, int], int] = {}
        #: Reference engine switch: age buffers with per-cycle ticks
        #: instead of interval accounting (see
        #: :meth:`~repro.noc.network.Network.use_per_cycle_nbti`).
        self.per_cycle_nbti = False

    # ------------------------------------------------------------------
    # Phase 0: deliveries (links, credits, control, Down_Up)
    # ------------------------------------------------------------------
    def phase_deliver(self, cycle: int) -> None:
        """Apply everything whose link latency elapsed this cycle."""
        for port in self.input_ports:
            wiring = self.inputs[port]
            unit = wiring.unit
            for command, vc in wiring.control_channel.pop_ready(cycle):
                unit.apply_command(command, vc, cycle)
            unit.tick_power()
            for vc, flit in wiring.data_channel.pop_ready(cycle):
                unit.receive_flit(vc, flit, cycle)
                if flit.is_head:
                    outport = unit.vcs[vc].outport
                    self.va_pending[outport][flit.vnet] += 1
        for port in self.output_ports:
            wiring = self.outputs[port]
            for vc in wiring.credit_channel.pop_ready(cycle):
                wiring.upstream.on_credit(vc)
            for vc in wiring.down_up_channel.pop_ready(cycle):
                wiring.upstream.set_most_degraded(vc, cycle)

    # ------------------------------------------------------------------
    # Phase 1: pre-VA recovery policies
    # ------------------------------------------------------------------
    def phase_policy(self, cycle: int) -> None:
        """Run the recovery policies of every output port (one per vnet)."""
        for port in self.output_ports:
            upstream = self.outputs[port].upstream
            pending = self.va_pending[port]
            for vnet in range(self.num_vnets):
                upstream.set_new_traffic(pending[vnet] > 0, vnet)
            upstream.run_policy(cycle)

    # ------------------------------------------------------------------
    # Phase 2: VC allocation
    # ------------------------------------------------------------------
    def phase_va(self, cycle: int) -> bool:
        """Grant at most one downstream VC per (output port, vnet) per
        cycle, restricted to the requester's own virtual network.

        Returns True when some request is still pending afterwards (the
        event-directed engine uses this to keep or drop the router from
        its VA work set; the dense engine ignores it)."""
        width = self.total_vcs
        num_inputs = len(self.input_ports)
        remaining = False
        for port in self.output_ports:
            pending = self.va_pending[port]
            upstream = self.outputs[port].upstream
            for vnet in range(self.num_vnets):
                if pending[vnet] <= 0:
                    continue
                if not upstream.has_allocatable(cycle, vnet):
                    remaining = True
                    continue
                requests = [False] * (num_inputs * width)
                requesters: Dict[int, InputVC] = {}
                for in_idx, (in_port, unit) in enumerate(self._unit_scan):
                    if unit.busy_count == 0:
                        # No resident packet => no VC can want VA here.
                        continue
                    for vc, ivc in enumerate(unit.vcs):
                        if (
                            ivc.wants_va
                            and ivc.outport == port
                            and ivc.vnet == vnet
                            and not ivc.buffer.is_empty
                            # BW+RC is stage 1: the head may request VA
                            # the cycle *after* it was written.
                            and ivc.buffer.front().arrived_cycle < cycle
                        ):
                            flat = in_idx * width + vc
                            requests[flat] = True
                            requesters[flat] = ivc
                granted = self._va_arbiters[(port, vnet)].grant(requests)
                if granted is None:
                    remaining = True
                    continue
                ivc = requesters[granted]
                out_vc = upstream.allocate_vc(cycle, packet_id=ivc.packet_id, vnet=vnet)
                if out_vc is None:
                    remaining = True
                    continue
                ivc.out_vc = out_vc
                ivc.sa_ready_at = cycle + 1
                pending[vnet] -= 1
                if pending[vnet] > 0:
                    remaining = True
        return remaining

    # ------------------------------------------------------------------
    # Phase 3: switch allocation + switch/link traversal
    # ------------------------------------------------------------------
    def phase_sa_st(self, cycle: int) -> int:
        """Move at most one flit per input port and per output port.

        Returns the number of flits traversed (the event-directed engine
        uses 0 as the trigger to re-check whether the router still holds
        resident packets; the dense engine ignores it)."""
        # Stage 1: each input port nominates one eligible VC.  Ports with
        # no resident packet are skipped outright.
        # in_port -> (vc, out_port, unit)
        nominations: Dict[int, Tuple[int, int, InputUnit]] = {}
        targeted = set()
        outputs = self.outputs
        input_ports = self.input_ports
        for in_port, unit in self._unit_scan:
            if unit.busy_count == 0:
                continue
            # A VC competes for the switch when it holds an allocated
            # output VC, its SA hold-off has elapsed, its front flit
            # arrived on an earlier cycle (BW+RC is stage 1), and the
            # upstream has a credit.  Cheap disqualifiers run first so
            # the credit check only fires for real contenders.
            requests = []
            any_eligible = False
            for ivc in unit.vcs:
                out_vc = ivc.out_vc
                if out_vc is None or ivc.sa_ready_at > cycle:
                    requests.append(False)
                    continue
                front = ivc.buffer.front()
                if front is None or front.arrived_cycle >= cycle:
                    requests.append(False)
                    continue
                # Inlined UpstreamPort.can_send (hot: every contender
                # VC on every SA cycle).
                entry = outputs[ivc.outport].upstream.entries[out_vc]
                ok = entry.state is _ACTIVE and entry.credits > 0
                requests.append(ok)
                if ok:
                    any_eligible = True
            if not any_eligible:
                continue
            vc = self._sa_input_arbiters[in_port].grant(requests)
            if vc is not None:
                out_port = unit.vcs[vc].outport
                nominations[in_port] = (vc, out_port, unit)
                targeted.add(out_port)
        if not targeted:
            return 0
        # Stage 2: each targeted output port accepts one nomination.
        moved = 0
        for out_port in targeted if len(targeted) == 1 else sorted(targeted):
            candidates = [
                p in nominations and nominations[p][1] == out_port
                for p in input_ports
            ]
            winner_idx = self._sa_output_arbiters[out_port].grant(candidates)
            if winner_idx is None:
                continue
            in_port = input_ports[winner_idx]
            vc, _, unit = nominations[in_port]
            out_vc = unit.vcs[vc].out_vc
            flit = unit.pop_flit(vc, cycle)
            flit.hops += 1
            outputs[out_port].upstream.send_flit(out_vc, flit, cycle)
            self.flits_routed += 1
            moved += 1
        return moved

    # ------------------------------------------------------------------
    # Phase 4: NBTI aging + sensor sampling
    # ------------------------------------------------------------------
    def phase_nbti(self, cycle: int) -> None:
        """Refresh sensor samples and the Down_Up most-degraded reports.

        One most-degraded id is maintained per (input port, vnet) —
        the comparator reduces each vnet's sensor slice independently.
        The Down_Up wires always carry a value; re-sending on changes
        and on every actual sensor measurement (a once-per-sample-period
        heartbeat, plus the initial latch done at build time) is an
        exact equivalent that also lets the upstream watchdog observe a
        dead sensor bank as a missing heartbeat.

        Aging uses interval accounting: device counters are only flushed
        up to ``cycle + 1`` when a measurement is actually due (the old
        per-cycle order ticked before sampling, so the sample cycle
        itself counts in the post-delivery power state).  Between
        samples a fault-free bank's readings — and hence the per-vnet
        most-degraded reduction — cannot change, so the whole phase is
        skipped.  A fault hook may distort the reduction on any cycle,
        so faulted banks take the dense path every cycle.

        With :attr:`per_cycle_nbti` set, the phase instead runs the
        reference engine: every device aged by one cycle, every bank
        probed and every vnet reduced, each and every cycle — the
        O(cycles x devices) schedule the interval engine replaces and
        the baseline arm of ``benchmarks/hotpath_speedup.py``.  The
        protocol (heartbeat + change resends) is identical, only the
        bookkeeping schedule differs.
        """
        n_vcs = self.num_vcs
        if self.per_cycle_nbti:
            for port in self.input_ports:
                unit = self.inputs[port].unit
                unit.nbti_tick()
                bank = unit.sensor_bank
                if bank is None:
                    continue
                bank.sample(cycle)
                refreshed = bank.last_sample_cycle == cycle
                for vnet in range(self.num_vnets):
                    current = bank.most_degraded_in(vnet * n_vcs, n_vcs)
                    key = (port, vnet)
                    if refreshed or self._last_md_sent.get(key) != current:
                        self._last_md_sent[key] = current
                        self._down_up_send(port, current, cycle)
            return
        for port in self.input_ports:
            unit = self.inputs[port].unit
            bank = unit.sensor_bank
            if bank is None:
                continue
            if bank.fault is None:
                last = bank.last_sample_cycle
                if last >= 0 and cycle - last < bank.sample_period:
                    continue  # no measurement due; Down_Up holds its value
            unit.nbti_flush(cycle + 1)
            bank.sample(cycle)
            refreshed = bank.last_sample_cycle == cycle
            for vnet in range(self.num_vnets):
                current = bank.most_degraded_in(vnet * n_vcs, n_vcs)
                key = (port, vnet)
                if refreshed or self._last_md_sent.get(key) != current:
                    self._last_md_sent[key] = current
                    self._down_up_send(port, current, cycle)

    def _down_up_send(self, port: int, vc: int, cycle: int) -> None:
        channel = self.down_up_channels.get(port)
        if channel is not None:
            channel.send(vc, cycle)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def duty_cycles(self, port: int) -> List[float]:
        """NBTI-duty-cycles (percent) of the VCs on input port ``port``."""
        return self.inputs[port].unit.duty_cycles()

    def occupancy(self) -> int:
        """Total flits buffered in this router."""
        return sum(self.inputs[p].unit.occupancy() for p in self.input_ports)

    def __repr__(self) -> str:
        ports = ",".join(port_name(p) for p in self.input_ports)
        return f"Router(id={self.router_id}, ports=[{ports}])"
