"""Network topologies: 2D mesh (the paper's), ring and 2D torus.

A topology enumerates routers, the directed links between their ports and
the coordinate helpers that routing algorithms need.  One network
interface (NI) is attached to every router's LOCAL port, and node ids
coincide with router ids.

Port numbering is uniform across topologies::

    LOCAL = 0, NORTH = 1, SOUTH = 2, EAST = 3, WEST = 4

(The ring only uses EAST/WEST.)  The paper's measurements reference ports
by compass name — e.g. *"the east input port of the upper left-most
router"* — so router (0, 0) is the top-left corner and y grows southward.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

# Uniform port ids.
LOCAL, NORTH, SOUTH, EAST, WEST = 0, 1, 2, 3, 4

#: Human-readable names for diagnostics and experiment tables.
PORT_NAMES: Dict[int, str] = {
    LOCAL: "local",
    NORTH: "north",
    SOUTH: "south",
    EAST: "east",
    WEST: "west",
}

#: Reverse mapping of :data:`PORT_NAMES`.
PORT_IDS: Dict[str, int] = {name: pid for pid, name in PORT_NAMES.items()}


def port_name(port: int) -> str:
    """Compass name of a port id (e.g. ``3 -> "east"``)."""
    return PORT_NAMES[port]


def port_id(name: str) -> int:
    """Port id of a compass name (case-insensitive, accepts ``"E"``)."""
    lowered = name.lower()
    aliases = {"l": "local", "n": "north", "s": "south", "e": "east", "w": "west"}
    lowered = aliases.get(lowered, lowered)
    try:
        return PORT_IDS[lowered]
    except KeyError:
        raise KeyError(f"unknown port name {name!r}") from None


@dataclasses.dataclass(frozen=True)
class LinkSpec:
    """A directed router-to-router link: (src router, src out port) ->
    (dst router, dst in port)."""

    src_router: int
    src_port: int
    dst_router: int
    dst_port: int


class Topology:
    """Base class: concrete topologies fill in geometry and links."""

    #: Number of router/NI pairs.
    num_nodes: int
    #: Ports present on every router (LOCAL always included).
    ports: Tuple[int, ...]

    def links(self) -> List[LinkSpec]:
        """All directed router-to-router links."""
        raise NotImplementedError

    def coordinates(self, node: int) -> Tuple[int, int]:
        """(x, y) grid coordinates of a node (rings use (i, 0))."""
        raise NotImplementedError

    def node_at(self, x: int, y: int) -> int:
        """Node id at grid coordinates (inverse of :meth:`coordinates`)."""
        raise NotImplementedError

    def neighbor(self, node: int, port: int) -> int:
        """Node reached by leaving ``node`` through ``port``.

        Backed by a ``(node, port) -> node`` map built on first use, so
        XY-routing setup and network wiring don't pay an O(links) scan
        per query (quadratic on a 16x16 mesh).

        Raises
        ------
        ValueError
            If the port does not lead anywhere from this node.
        """
        table = getattr(self, "_neighbor_map", None)
        if table is None:
            table = {
                (link.src_router, link.src_port): link.dst_router
                for link in self.links()
            }
            self._neighbor_map = table
        try:
            return table[(node, port)]
        except KeyError:
            raise ValueError(
                f"node {node} has no neighbor through port {port_name(port)}"
            ) from None

    def hop_distance(self, src: int, dst: int) -> int:
        """Minimal hop count between two nodes."""
        raise NotImplementedError

    def validate_node(self, node: int) -> None:
        """Raise ``ValueError`` for out-of-range node ids."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range [0, {self.num_nodes})")


class Mesh2D(Topology):
    """A ``width x height`` 2D mesh (the paper's Tilera-iMesh-style fabric).

    Node ids grow left-to-right, top-to-bottom: node = ``y * width + x``.
    Corner and edge routers simply lack the links that would leave the
    grid.

    >>> mesh = Mesh2D(2, 2)
    >>> mesh.num_nodes
    4
    >>> mesh.neighbor(0, EAST)
    1
    """

    ports = (LOCAL, NORTH, SOUTH, EAST, WEST)

    def __init__(self, width: int, height: int) -> None:
        if width < 1 or height < 1:
            raise ValueError(f"mesh dimensions must be >= 1, got {width}x{height}")
        if width * height < 2:
            raise ValueError("a network needs at least 2 nodes")
        self.width = width
        self.height = height
        self.num_nodes = width * height
        self._links = self._build_links()

    def _build_links(self) -> List[LinkSpec]:
        links: List[LinkSpec] = []
        for y in range(self.height):
            for x in range(self.width):
                node = self.node_at(x, y)
                if x + 1 < self.width:
                    east = self.node_at(x + 1, y)
                    links.append(LinkSpec(node, EAST, east, WEST))
                    links.append(LinkSpec(east, WEST, node, EAST))
                if y + 1 < self.height:
                    south = self.node_at(x, y + 1)
                    links.append(LinkSpec(node, SOUTH, south, NORTH))
                    links.append(LinkSpec(south, NORTH, node, SOUTH))
        return links

    def links(self) -> List[LinkSpec]:
        return list(self._links)

    def coordinates(self, node: int) -> Tuple[int, int]:
        self.validate_node(node)
        return (node % self.width, node // self.width)

    def node_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"coordinates ({x}, {y}) outside {self.width}x{self.height} mesh")
        return y * self.width + x

    def hop_distance(self, src: int, dst: int) -> int:
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        return abs(sx - dx) + abs(sy - dy)

    def __repr__(self) -> str:
        return f"Mesh2D({self.width}x{self.height})"


class Torus2D(Mesh2D):
    """A 2D torus: a mesh with wrap-around links.

    Both dimensions must be at least 3: on a 1- or 2-wide dimension a
    wrap link would duplicate an existing mesh link on the same port
    pair (or loop a node onto itself), so such a "torus" silently
    degenerates into a mesh that still hashes and reports as a torus —
    exactly the confusion a DSE axis must not produce.  Use
    :class:`Mesh2D` (or :class:`Ring`) for those shapes.

    Note that plain XY routing on a torus is **not** deadlock-free without
    extra escape VCs; the torus is provided for topology-exploration
    extensions and its tests use it below saturation only.
    """

    def __init__(self, width: int, height: int) -> None:
        if width < 3 or height < 3:
            raise ValueError(
                f"torus dimensions must be >= 3, got {width}x{height}: "
                "wrap-around links degenerate on 1- or 2-wide dimensions "
                "(the result would be a plain mesh); use mesh or ring instead"
            )
        super().__init__(width, height)

    def _build_links(self) -> List[LinkSpec]:
        links = super()._build_links()
        for y in range(self.height):
            west_edge = self.node_at(0, y)
            east_edge = self.node_at(self.width - 1, y)
            links.append(LinkSpec(east_edge, EAST, west_edge, WEST))
            links.append(LinkSpec(west_edge, WEST, east_edge, EAST))
        for x in range(self.width):
            north_edge = self.node_at(x, 0)
            south_edge = self.node_at(x, self.height - 1)
            links.append(LinkSpec(south_edge, SOUTH, north_edge, NORTH))
            links.append(LinkSpec(north_edge, NORTH, south_edge, SOUTH))
        return links

    def hop_distance(self, src: int, dst: int) -> int:
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        ddx = abs(sx - dx)
        ddy = abs(sy - dy)
        # Both dimensions are >= 3 (enforced at construction), so the
        # wrap-around path is always available.
        ddx = min(ddx, self.width - ddx)
        ddy = min(ddy, self.height - ddy)
        return ddx + ddy

    def __repr__(self) -> str:
        return f"Torus2D({self.width}x{self.height})"


class Ring(Topology):
    """A bidirectional ring of ``n`` nodes using the EAST/WEST ports."""

    ports = (LOCAL, EAST, WEST)

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 2:
            raise ValueError(f"a ring needs >= 2 nodes, got {num_nodes}")
        self.num_nodes = num_nodes
        self._links = self._build_links()

    def _build_links(self) -> List[LinkSpec]:
        links: List[LinkSpec] = []
        n = self.num_nodes
        for node in range(n):
            east = (node + 1) % n
            links.append(LinkSpec(node, EAST, east, WEST))
            links.append(LinkSpec(east, WEST, node, EAST))
        return links

    def links(self) -> List[LinkSpec]:
        return list(self._links)

    def coordinates(self, node: int) -> Tuple[int, int]:
        self.validate_node(node)
        return (node, 0)

    def node_at(self, x: int, y: int) -> int:
        if y != 0:
            raise ValueError("ring coordinates have y == 0")
        self.validate_node(x)
        return x

    def hop_distance(self, src: int, dst: int) -> int:
        self.validate_node(src)
        self.validate_node(dst)
        forward = (dst - src) % self.num_nodes
        return min(forward, self.num_nodes - forward)

    def __repr__(self) -> str:
        return f"Ring({self.num_nodes})"


def build_topology(name: str, num_nodes: int) -> Topology:
    """Build a topology by name for a node count.

    ``"mesh"`` requires a perfect-square or rectangular count and chooses
    the squarest factorization (the paper uses 2x2 and 4x4).  Prime node
    counts above 2 are rejected: their only factorization is the
    degenerate Nx1 chain, which silently behaves like a worse ring (the
    paper's 2-node setup stays legal as the trivial 2x1 mesh).  A torus
    additionally needs both dimensions >= 3 for its wrap-around links to
    exist (see :class:`Torus2D`), so e.g. 4 torus nodes raise here
    instead of silently building a 2x2 mesh.
    """
    lowered = name.lower()
    if lowered == "ring":
        return Ring(num_nodes)
    if lowered in ("mesh", "torus"):
        width = _squarest_width(num_nodes)
        height = num_nodes // width
        if height == 1 and num_nodes > 2:
            raise ValueError(
                f"{num_nodes} nodes only factorize into a degenerate "
                f"{width}x1 {lowered} (prime count); pick a composite "
                "node count, or use the ring topology for a chain"
            )
        cls = Mesh2D if lowered == "mesh" else Torus2D
        return cls(width, height)
    raise ValueError(f"unknown topology {name!r} (expected mesh, torus or ring)")


def _squarest_width(num_nodes: int) -> int:
    """Largest divisor of ``num_nodes`` not exceeding its square root."""
    best = 1
    d = 1
    while d * d <= num_nodes:
        if num_nodes % d == 0:
            best = d
        d += 1
    return num_nodes // best if num_nodes // best >= best else best
