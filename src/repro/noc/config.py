"""Simulation configuration for the NoC + NBTI estimation framework."""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.nbti.constants import TECH_45NM, TechnologyNode


@dataclasses.dataclass(frozen=True)
class NoCConfig:
    """Static parameters of one simulated network.

    Defaults follow the paper's Table I router (3-stage wormhole, 4-flit
    VC buffers, 64-bit flits, 1 GHz 2D mesh) with 2 VCs per input port.

    Attributes
    ----------
    num_nodes:
        Tile count (4 or 16 in the paper).
    topology, routing:
        Names resolved by :func:`repro.noc.topology.build_topology` and
        :func:`repro.noc.routing.build_routing` (``"auto"`` picks XY on
        meshes).
    num_vcs:
        Virtual channels **per virtual network** (2 or 4 in the paper).
    num_vnets:
        Virtual networks per port (Table I: 2/6; the paper's
        measurements exercise one vnet at a time, the default).  Total
        VCs per input port = ``num_vcs * num_vnets``; packets may only
        use VCs of their own vnet (protocol-deadlock separation).
    buffer_depth:
        Flit slots per VC buffer (paper: 4).
    packet_length:
        Default flits per packet when the traffic generator does not
        choose a length.
    flit_width_bits:
        Link/data-path width (paper: 64 for the area study, 32-bit links
        in Table I; the area bench overrides to 64).
    link_latency:
        Cycles on every inter-router channel (data, credit, Up_Down,
        Down_Up).
    wake_latency:
        Extra cycles a gated buffer needs to power back on.
    sensor_sample_period:
        Cycles between NBTI sensor measurements.
    seed:
        Master seed for traffic and PV sampling (scenario runners derive
        per-purpose seeds from it).
    technology:
        Technology node (45 nm default, as in the paper's evaluation).
    aging_time_scale:
        Wall-clock seconds of *aging* represented by one simulated cycle,
        as a multiple of the clock period.  1.0 (default) means real
        time — a 30 M-cycle run ages devices by 30 ms, so the
        most-degraded ranking is fixed by process variation, exactly as
        in the paper.  Large factors (e.g. 1e9: one cycle ~ one second)
        compress years of aging into a simulation, letting the sensed
        most-degraded VC *migrate* as duty-cycle differences accumulate.
    """

    num_nodes: int = 4
    topology: str = "mesh"
    routing: str = "auto"
    num_vcs: int = 2
    num_vnets: int = 1
    buffer_depth: int = 4
    packet_length: int = 4
    flit_width_bits: int = 64
    link_latency: int = 1
    wake_latency: int = 1
    sensor_sample_period: int = 1024
    seed: int = 1
    technology: TechnologyNode = TECH_45NM
    aging_time_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ValueError(f"num_nodes must be >= 2, got {self.num_nodes}")
        if self.num_vcs < 1:
            raise ValueError(f"num_vcs must be >= 1, got {self.num_vcs}")
        if self.num_vnets < 1:
            raise ValueError(f"num_vnets must be >= 1, got {self.num_vnets}")
        if self.buffer_depth < 1:
            raise ValueError(f"buffer_depth must be >= 1, got {self.buffer_depth}")
        if self.packet_length < 1:
            raise ValueError(f"packet_length must be >= 1, got {self.packet_length}")
        if self.packet_length > self.buffer_depth:
            # A packet longer than a buffer cannot be fully absorbed by a
            # stalled VC; that is legal in wormhole switching, but the
            # paper's setup keeps packet == buffer depth.  Allow it.
            pass
        if self.flit_width_bits < 1:
            raise ValueError(f"flit_width_bits must be >= 1, got {self.flit_width_bits}")
        if self.link_latency < 1:
            raise ValueError(f"link_latency must be >= 1, got {self.link_latency}")
        if self.wake_latency < 0:
            raise ValueError(f"wake_latency must be >= 0, got {self.wake_latency}")
        if self.sensor_sample_period < 1:
            raise ValueError(
                f"sensor_sample_period must be >= 1, got {self.sensor_sample_period}"
            )
        if self.aging_time_scale <= 0.0:
            raise ValueError(
                f"aging_time_scale must be positive, got {self.aging_time_scale}"
            )

    @property
    def total_vcs(self) -> int:
        """VCs per input port across all virtual networks."""
        return self.num_vcs * self.num_vnets

    def replace(self, **changes) -> "NoCConfig":
        """Return a modified copy (convenience around dataclasses.replace)."""
        return dataclasses.replace(self, **changes)
