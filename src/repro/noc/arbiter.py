"""Round-robin arbitration, the grant logic used by VA and SA stages."""

from __future__ import annotations

from typing import Optional, Sequence


class RoundRobinArbiter:
    """A classic rotating-priority arbiter over ``size`` requesters.

    The requester granted last gets the *lowest* priority at the next
    arbitration, guaranteeing starvation freedom.  The arbiter is
    deterministic, which keeps whole-network simulations reproducible.

    Example
    -------
    >>> arb = RoundRobinArbiter(3)
    >>> arb.grant([True, True, True])
    0
    >>> arb.grant([True, True, True])
    1
    >>> arb.grant([False, False, True])
    2
    >>> arb.grant([False, False, False]) is None
    True
    """

    __slots__ = ("size", "_pointer")

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"arbiter size must be >= 1, got {size}")
        self.size = size
        self._pointer = 0

    @property
    def pointer(self) -> int:
        """Index with the highest priority at the next grant."""
        return self._pointer

    def grant(self, requests: Sequence[bool]) -> Optional[int]:
        """Grant the first requester at or after the pointer; advance it.

        Returns the granted index, or ``None`` when nobody requests.
        """
        if len(requests) != self.size:
            raise ValueError(
                f"expected {self.size} request lines, got {len(requests)}"
            )
        for offset in range(self.size):
            idx = (self._pointer + offset) % self.size
            if requests[idx]:
                self._pointer = (idx + 1) % self.size
                return idx
        return None

    def reset(self) -> None:
        """Return the pointer to index 0."""
        self._pointer = 0
