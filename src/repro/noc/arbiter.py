"""Round-robin arbitration, the grant logic used by VA and SA stages."""

from __future__ import annotations

from typing import Optional, Sequence


class RoundRobinArbiter:
    """A classic rotating-priority arbiter over ``size`` requesters.

    The requester granted last gets the *lowest* priority at the next
    arbitration, guaranteeing starvation freedom.  The arbiter is
    deterministic, which keeps whole-network simulations reproducible.

    Example
    -------
    >>> arb = RoundRobinArbiter(3)
    >>> arb.grant([True, True, True])
    0
    >>> arb.grant([True, True, True])
    1
    >>> arb.grant([False, False, True])
    2
    >>> arb.grant([False, False, False]) is None
    True
    """

    __slots__ = ("size", "_pointer")

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"arbiter size must be >= 1, got {size}")
        self.size = size
        self._pointer = 0

    @property
    def pointer(self) -> int:
        """Index with the highest priority at the next grant."""
        return self._pointer

    def grant(self, requests: Sequence[bool]) -> Optional[int]:
        """Grant the first requester at or after the pointer; advance it.

        Returns the granted index, or ``None`` when nobody requests.
        """
        size = self.size
        if len(requests) != size:
            raise ValueError(
                f"expected {size} request lines, got {len(requests)}"
            )
        # Branchy wrap instead of modulo: grant sits on the SA/VA hot
        # path and the pointer invariant (always < size) makes a single
        # compare per probe sufficient.
        idx = self._pointer
        for _ in range(size):
            if idx >= size:
                idx -= size
            if requests[idx]:
                nxt = idx + 1
                self._pointer = nxt if nxt < size else 0
                return idx
            idx += 1
        return None

    def reset(self) -> None:
        """Return the pointer to index 0."""
        self._pointer = 0
