"""Power-gateable virtual-channel buffer.

Every input-port VC of a router is a small flit FIFO guarded by a header
PMOS sleep transistor (paper Sec. III-A).  The buffer has three power
states:

* ``ON`` — powered; storing flits or idle.  **NBTI stress.**
* ``WAKING`` — supply ramping back up after a wake command; cannot accept
  flits yet.  Counted as stress (the rail is energized).
* ``GATED`` — supply cut by the sleep transistor.  **NBTI recovery.**

Gating is only legal when the buffer is empty (the upstream router only
gates VCs whose ``out_vc_state`` is IDLE, so this holds by construction;
the buffer still enforces it defensively).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Optional, Tuple

from repro.nbti.transistor import PMOSDevice
from repro.noc.flit import Flit
from repro.telemetry import probes


class PowerState(enum.Enum):
    """Supply state of a VC buffer."""

    ON = "on"
    WAKING = "waking"
    GATED = "gated"


class BufferError(RuntimeError):
    """Raised on illegal buffer operations (overflow, push-while-gated...)."""


class VCBuffer:
    """A flit FIFO with power gating and NBTI accounting hooks.

    Parameters
    ----------
    capacity:
        Buffer depth in flits (paper: 4).
    device:
        Optional :class:`PMOSDevice` representing the buffer's worst PMOS;
        when present, :meth:`nbti_tick` ages it each cycle.
    track_nbti:
        Whether this buffer participates in NBTI statistics (ejection
        buffers at the NIs are excluded by default).
    """

    __slots__ = (
        "capacity", "device", "track_nbti", "wake_fault", "on_push_unpowered",
        "trace", "trace_id", "_flits", "_state", "_wake_remaining",
    )

    def __init__(
        self,
        capacity: int,
        device: Optional[PMOSDevice] = None,
        track_nbti: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"buffer capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.device = device
        self.track_nbti = track_nbti
        #: Optional fault hooks (see :mod:`repro.faults`).  ``wake_fault``
        #: maps a wake latency to a modified latency (or ``None`` to drop
        #: the wake entirely: a stuck sleep transistor).  ``on_push_unpowered``
        #: is consulted when a flit arrives at a non-ON buffer; returning
        #: True forces an emergency wake-on-arrival instead of the hard
        #: :class:`BufferError`.  Both stay ``None`` in fault-free runs.
        self.wake_fault = None
        self.on_push_unpowered = None
        #: Telemetry handle + track id (see repro.telemetry.runtime);
        #: ``None``/0 outside traced runs.
        self.trace = None
        self.trace_id = 0
        self._flits: Deque[Flit] = deque()
        self._state = PowerState.ON
        self._wake_remaining = 0

    # ------------------------------------------------------------------
    # FIFO behaviour
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._flits)

    @property
    def is_empty(self) -> bool:
        return not self._flits

    @property
    def is_full(self) -> bool:
        return len(self._flits) >= self.capacity

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._flits)

    def front(self) -> Optional[Flit]:
        """Peek the oldest buffered flit, or None when empty."""
        return self._flits[0] if self._flits else None

    @property
    def flits(self) -> Tuple[Flit, ...]:
        """Read-only snapshot of the buffered flits, oldest first."""
        return tuple(self._flits)

    def push(self, flit: Flit) -> None:
        """Append a flit; the buffer must be powered and not full."""
        if self._state is not PowerState.ON:
            if self.on_push_unpowered is not None and self.on_push_unpowered(self, flit):
                # Emergency wake-on-arrival: the flit's own wordline
                # energizes the rail (documented relaxation; faults only).
                self._state = PowerState.ON
                self._wake_remaining = 0
                if self.trace is not None:
                    self.trace.instant(
                        probes.BUFFER_EMERGENCY_WAKE, "buffer", tid=self.trace_id
                    )
            else:
                raise BufferError(f"push into a {self._state.value} buffer: {flit!r}")
        if self.is_full:
            raise BufferError(f"buffer overflow (capacity {self.capacity}): {flit!r}")
        self._flits.append(flit)

    def pop(self) -> Flit:
        """Remove and return the oldest flit."""
        if not self._flits:
            raise BufferError("pop from an empty buffer")
        return self._flits.popleft()

    # ------------------------------------------------------------------
    # Power gating
    # ------------------------------------------------------------------
    @property
    def state(self) -> PowerState:
        return self._state

    @property
    def powered(self) -> bool:
        """True when the rail is energized (ON or WAKING) — NBTI stress."""
        return self._state is not PowerState.GATED

    @property
    def can_accept(self) -> bool:
        """True when a flit may be pushed this cycle."""
        return self._state is PowerState.ON and not self.is_full

    def gate(self) -> None:
        """Cut the supply.  Only legal on an empty buffer; idempotent."""
        if self._flits:
            raise BufferError("cannot gate a buffer that is storing flits")
        if self.trace is not None and self._state is not PowerState.GATED:
            self.trace.instant(probes.BUFFER_GATE, "buffer", tid=self.trace_id)
        self._state = PowerState.GATED
        self._wake_remaining = 0

    def wake(self, latency: int = 1) -> None:
        """Begin restoring the supply; ready after ``latency`` cycles.

        Waking an already-ON buffer is a no-op; re-waking a WAKING buffer
        does not extend its countdown.
        """
        if latency < 0:
            raise ValueError(f"wake latency must be non-negative, got {latency}")
        if self._state is PowerState.ON:
            return
        if self._state is PowerState.WAKING:
            return
        if self.wake_fault is not None:
            latency = self.wake_fault(latency)
            if latency is None:
                return  # wake command lost in the sleep-transistor driver
        if self.trace is not None:
            self.trace.instant(
                probes.BUFFER_WAKE, "buffer", tid=self.trace_id,
                args={"latency": latency},
            )
        if latency == 0:
            self._state = PowerState.ON
        else:
            self._state = PowerState.WAKING
            self._wake_remaining = latency

    def tick_power(self) -> None:
        """Advance the wake countdown by one cycle (call once per cycle)."""
        if self._state is PowerState.WAKING:
            self._wake_remaining -= 1
            if self._wake_remaining <= 0:
                self._state = PowerState.ON
                if self.trace is not None:
                    self.trace.instant(
                        probes.BUFFER_WAKE_COMPLETE, "buffer", tid=self.trace_id
                    )

    # ------------------------------------------------------------------
    # NBTI hooks
    # ------------------------------------------------------------------
    def nbti_tick(self) -> None:
        """Age the guarding PMOS by one cycle of stress or recovery."""
        if self.device is not None and self.track_nbti:
            self.device.tick(stressed=self.powered)

    def __repr__(self) -> str:
        return (
            f"VCBuffer(len={len(self._flits)}/{self.capacity}, "
            f"state={self._state.value})"
        )
