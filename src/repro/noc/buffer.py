"""Power-gateable virtual-channel buffer.

Every input-port VC of a router is a small flit FIFO guarded by a header
PMOS sleep transistor (paper Sec. III-A).  The buffer has three power
states:

* ``ON`` — powered; storing flits or idle.  **NBTI stress.**
* ``WAKING`` — supply ramping back up after a wake command; cannot accept
  flits yet.  Counted as stress (the rail is energized).
* ``GATED`` — supply cut by the sleep transistor.  **NBTI recovery.**

Gating is only legal when the buffer is empty (the upstream router only
gates VCs whose ``out_vc_state`` is IDLE, so this holds by construction;
the buffer still enforces it defensively).

NBTI accounting modes
---------------------
Two equivalent accounting modes are supported:

* **Per-cycle** (legacy, unit tests): call :meth:`nbti_tick` once per
  cycle; the device ages one cycle in the current power state.
* **Interval** (the simulator's hot path): pass the current ``cycle`` to
  every power transition (:meth:`gate`/:meth:`wake`/:meth:`push`) and
  call :meth:`nbti_flush` before any counter read.  The buffer keeps an
  *anchor* — the first cycle not yet accounted — and books whole
  ``[anchor, cycle)`` intervals in bulk, turning O(cycles) work into
  O(transitions).  Only GATED<->powered transitions flush (WAKING->ON
  stays on the stress side of the boundary).

The two modes must not be mixed on one buffer.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Optional, Tuple

from repro.nbti.transistor import PMOSDevice
from repro.noc.flit import Flit
from repro.telemetry import probes


class PowerState(enum.Enum):
    """Supply state of a VC buffer."""

    ON = "on"
    WAKING = "waking"
    GATED = "gated"


class BufferError(RuntimeError):
    """Raised on illegal buffer operations (overflow, push-while-gated...)."""


class VCBuffer:
    """A flit FIFO with power gating and NBTI accounting hooks.

    Parameters
    ----------
    capacity:
        Buffer depth in flits (paper: 4).
    device:
        Optional :class:`PMOSDevice` representing the buffer's worst PMOS;
        when present, :meth:`nbti_tick` ages it each cycle.
    track_nbti:
        Whether this buffer participates in NBTI statistics (ejection
        buffers at the NIs are excluded by default).
    """

    __slots__ = (
        "capacity", "device", "track_nbti", "wake_fault", "on_push_unpowered",
        "trace", "trace_id", "_flits", "_state", "_wake_remaining",
        "_nbti_anchor", "per_cycle_nbti",
    )

    def __init__(
        self,
        capacity: int,
        device: Optional[PMOSDevice] = None,
        track_nbti: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"buffer capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.device = device
        self.track_nbti = track_nbti
        #: Optional fault hooks (see :mod:`repro.faults`).  ``wake_fault``
        #: maps a wake latency to a modified latency (or ``None`` to drop
        #: the wake entirely: a stuck sleep transistor).  ``on_push_unpowered``
        #: is consulted when a flit arrives at a non-ON buffer; returning
        #: True forces an emergency wake-on-arrival instead of the hard
        #: :class:`BufferError`.  Both stay ``None`` in fault-free runs.
        self.wake_fault = None
        self.on_push_unpowered = None
        #: Telemetry handle + track id (see repro.telemetry.runtime);
        #: ``None``/0 outside traced runs.
        self.trace = None
        self.trace_id = 0
        self._flits: Deque[Flit] = deque()
        self._state = PowerState.ON
        self._wake_remaining = 0
        #: First cycle not yet booked into the duty-cycle counter
        #: (interval accounting mode only).
        self._nbti_anchor = 0
        #: When True the buffer is aged by per-cycle :meth:`nbti_tick`
        #: calls (the reference engine, see
        #: :meth:`~repro.noc.network.Network.use_per_cycle_nbti`) and
        #: every interval flush becomes a no-op so the two bookkeeping
        #: schemes can never double-count.
        self.per_cycle_nbti = False

    # ------------------------------------------------------------------
    # FIFO behaviour
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._flits)

    @property
    def is_empty(self) -> bool:
        return not self._flits

    @property
    def is_full(self) -> bool:
        return len(self._flits) >= self.capacity

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._flits)

    def front(self) -> Optional[Flit]:
        """Peek the oldest buffered flit, or None when empty."""
        return self._flits[0] if self._flits else None

    @property
    def flits(self) -> Tuple[Flit, ...]:
        """Read-only snapshot of the buffered flits, oldest first."""
        return tuple(self._flits)

    def push(self, flit: Flit, cycle: Optional[int] = None) -> None:
        """Append a flit; the buffer must be powered and not full.

        ``cycle`` is required in interval accounting mode so an
        emergency wake-on-arrival books the preceding recovery interval
        before the state flips.
        """
        if self._state is not PowerState.ON:
            if self.on_push_unpowered is not None and self.on_push_unpowered(self, flit):
                # Emergency wake-on-arrival: the flit's own wordline
                # energizes the rail (documented relaxation; faults only).
                if cycle is not None and self._state is PowerState.GATED:
                    self.nbti_flush(cycle)
                self._state = PowerState.ON
                self._wake_remaining = 0
                if self.trace is not None:
                    self.trace.instant(
                        probes.BUFFER_EMERGENCY_WAKE, "buffer", tid=self.trace_id
                    )
            else:
                raise BufferError(f"push into a {self._state.value} buffer: {flit!r}")
        if len(self._flits) >= self.capacity:
            raise BufferError(f"buffer overflow (capacity {self.capacity}): {flit!r}")
        self._flits.append(flit)

    def pop(self) -> Flit:
        """Remove and return the oldest flit."""
        if not self._flits:
            raise BufferError("pop from an empty buffer")
        return self._flits.popleft()

    # ------------------------------------------------------------------
    # Power gating
    # ------------------------------------------------------------------
    @property
    def state(self) -> PowerState:
        return self._state

    @property
    def powered(self) -> bool:
        """True when the rail is energized (ON or WAKING) — NBTI stress."""
        return self._state is not PowerState.GATED

    @property
    def can_accept(self) -> bool:
        """True when a flit may be pushed this cycle."""
        return self._state is PowerState.ON and not self.is_full

    def gate(self, cycle: Optional[int] = None) -> None:
        """Cut the supply.  Only legal on an empty buffer; idempotent.

        In interval accounting mode pass the current ``cycle``: the
        stress interval up to (excluding) this cycle is booked before
        the state flips, so cycle ``cycle`` itself counts as recovery —
        exactly what per-cycle ticking after deliveries produced.
        """
        if self._flits:
            raise BufferError("cannot gate a buffer that is storing flits")
        if self._state is PowerState.GATED:
            return
        if cycle is not None:
            self.nbti_flush(cycle)
        if self.trace is not None:
            self.trace.instant(probes.BUFFER_GATE, "buffer", tid=self.trace_id)
        self._state = PowerState.GATED
        self._wake_remaining = 0

    def wake(self, latency: int = 1, cycle: Optional[int] = None) -> None:
        """Begin restoring the supply; ready after ``latency`` cycles.

        Waking an already-ON buffer is a no-op; re-waking a WAKING buffer
        does not extend its countdown.  In interval accounting mode pass
        the current ``cycle``: the recovery interval up to (excluding)
        this cycle is booked before the rail re-energizes.
        """
        if latency < 0:
            raise ValueError(f"wake latency must be non-negative, got {latency}")
        if self._state is PowerState.ON:
            return
        if self._state is PowerState.WAKING:
            return
        if self.wake_fault is not None:
            latency = self.wake_fault(latency)
            if latency is None:
                return  # wake command lost in the sleep-transistor driver
        if cycle is not None:
            self.nbti_flush(cycle)
        if self.trace is not None:
            self.trace.instant(
                probes.BUFFER_WAKE, "buffer", tid=self.trace_id,
                args={"latency": latency},
            )
        if latency == 0:
            self._state = PowerState.ON
        else:
            self._state = PowerState.WAKING
            self._wake_remaining = latency

    def tick_power(self) -> None:
        """Advance the wake countdown by one cycle (call once per cycle)."""
        if self._state is PowerState.WAKING:
            self._wake_remaining -= 1
            if self._wake_remaining <= 0:
                self._state = PowerState.ON
                if self.trace is not None:
                    self.trace.instant(
                        probes.BUFFER_WAKE_COMPLETE, "buffer", tid=self.trace_id
                    )

    # ------------------------------------------------------------------
    # NBTI hooks
    # ------------------------------------------------------------------
    def nbti_tick(self) -> None:
        """Age the guarding PMOS by one cycle of stress or recovery."""
        if self.device is not None and self.track_nbti:
            self.device.tick(stressed=self.powered)

    def nbti_flush(self, cycle: int) -> None:
        """Book the interval ``[anchor, cycle)`` in the current state.

        Interval accounting mode: called before every GATED<->powered
        transition and before any counter read (sensor sample, harvest).
        """
        if self.per_cycle_nbti:
            return
        delta = cycle - self._nbti_anchor
        if delta <= 0:
            return
        self._nbti_anchor = cycle
        device = self.device
        if device is not None and self.track_nbti:
            counter = device.counter
            if self._state is PowerState.GATED:
                counter.recovery_cycles += delta
            else:
                counter.stress_cycles += delta

    def nbti_rebase(self, cycle: int) -> None:
        """Restart interval accounting at ``cycle``, discarding the
        unbooked interval (used with counter resets: warm-up discard)."""
        self._nbti_anchor = cycle

    def __repr__(self) -> str:
        return (
            f"VCBuffer(len={len(self._flits)}/{self.capacity}, "
            f"state={self._state.value})"
        )
