"""Interface between the NoC substrate and NBTI recovery policies.

The recovery policies (the paper's contribution, in :mod:`repro.core`)
run as a **pre-VA stage** in each *upstream* port — a router output unit
or a network interface injecting into its local port.  Every cycle the
policy sees:

* the ``out_vc_state`` of the downstream input port (ACTIVE / IDLE /
  RECOVERY per VC),
* whether *new* packets (no downstream VC allocated yet) are waiting to
  cross this port (``new_traffic``), and
* for sensor-wise policies, the most-degraded VC id received over the
  ``Down_Up`` link.

It produces a :class:`PolicyDecision`: the set of non-ACTIVE VCs that
must stay powered (``awake``), plus the paper's ``enable``/``idle_vc``
signals that travel on the ``Up_Down`` link.  The upstream port engine
turns the decision into gate/wake commands, applying only the *diffs*
against the current power state (re-asserting an already-awake VC does
not toggle its sleep transistor).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import FrozenSet, Optional, Sequence, Tuple


class OutVCState(enum.Enum):
    """Per-VC allocation/power state as seen by the upstream pre-VA stage."""

    #: A packet currently owns the downstream VC (stressed, not gateable).
    ACTIVE = "active"
    #: No packet owns it and it is powered — allocatable, but stressed.
    IDLE = "idle"
    #: No packet owns it and it is power-gated — recovering.
    RECOVERY = "recovery"


@dataclasses.dataclass(frozen=True)
class PolicyContext:
    """Everything a recovery policy may observe for one output port.

    Attributes
    ----------
    cycle:
        Current simulation cycle.
    vc_states:
        ``out_vc_state`` per downstream VC.
    new_traffic:
        ``is_new_traffic_outport_x()`` of the paper: at least one new
        packet (without an allocated downstream VC) wants this port.
    most_degraded_vc:
        Most-degraded VC id from the ``Down_Up`` link; ``None`` when the
        port has no sensors (sensor-less configurations).
    sensor_faulted:
        True while the port's staleness/plausibility watchdog considers
        the ``Down_Up`` information untrustworthy; sensor-wise policies
        should degrade gracefully to a sensor-less strategy.
    """

    cycle: int
    vc_states: Tuple[OutVCState, ...]
    new_traffic: bool
    most_degraded_vc: Optional[int] = None
    sensor_faulted: bool = False

    @property
    def num_vcs(self) -> int:
        return len(self.vc_states)

    def is_active(self, vc: int) -> bool:
        return self.vc_states[vc] is OutVCState.ACTIVE

    def is_idle(self, vc: int) -> bool:
        """Powered and unallocated (the algorithms' ``is_idle``)."""
        return self.vc_states[vc] is OutVCState.IDLE

    def is_recovery(self, vc: int) -> bool:
        """Power-gated (the algorithms' ``is_recovery``)."""
        return self.vc_states[vc] is OutVCState.RECOVERY

    def gateable_vcs(self) -> Tuple[int, ...]:
        """VCs that are not ACTIVE (candidates for gating or waking)."""
        return tuple(
            vc for vc, s in enumerate(self.vc_states) if s is not OutVCState.ACTIVE
        )


@dataclasses.dataclass(frozen=True)
class PolicyDecision:
    """Outcome of one pre-VA evaluation.

    Attributes
    ----------
    awake:
        Non-ACTIVE VCs that must be powered after this cycle; every other
        non-ACTIVE VC is put (or kept) in recovery.  ACTIVE VCs are never
        touched.
    enable:
        The ``enable`` wire of the ``Up_Down`` link: asserts that
        ``idle_vc`` names a VC deliberately kept idle for new packets.
    idle_vc:
        The VC-id wires of the ``Up_Down`` link.  A valid id is always
        driven (the link has no idle state); ``enable`` qualifies it.
    """

    awake: FrozenSet[int]
    enable: bool
    idle_vc: int

    @classmethod
    def gate_all(cls, idle_vc: int = 0) -> "PolicyDecision":
        """No new traffic: every idle VC may recover."""
        return cls(awake=frozenset(), enable=False, idle_vc=idle_vc)

    @classmethod
    def keep_one(cls, vc: int) -> "PolicyDecision":
        """Keep exactly ``vc`` awake for an incoming new packet."""
        return cls(awake=frozenset((vc,)), enable=True, idle_vc=vc)

    @classmethod
    def all_awake(cls, num_vcs: int) -> "PolicyDecision":
        """Baseline behaviour: nothing is ever gated."""
        return cls(awake=frozenset(range(num_vcs)), enable=False, idle_vc=0)

    def validate(self, num_vcs: int) -> None:
        """Sanity-check VC indices against the port width."""
        if not 0 <= self.idle_vc < num_vcs:
            raise ValueError(f"idle_vc {self.idle_vc} out of range [0, {num_vcs})")
        for vc in self.awake:
            if not 0 <= vc < num_vcs:
                raise ValueError(f"awake vc {vc} out of range [0, {num_vcs})")


class RecoveryPolicy:
    """Base class for pre-VA recovery policies.

    Subclasses implement :meth:`decide`.  A policy instance is attached
    to exactly one upstream port (it may keep per-port state such as the
    round-robin candidate pointer).
    """

    #: Short machine name used by configs and tables.
    name: str = "abstract"
    #: Whether the policy consumes the Down_Up most-degraded information.
    uses_sensor: bool = False
    #: Whether the policy consumes upstream traffic information.
    uses_traffic: bool = False
    #: A *stable* policy's decision is a fixed point of its own
    #: application: re-evaluating on the post-decision VC states (with
    #: the same epoch, traffic and sensor inputs) yields the same
    #: decision.  Stable policies are memoized by the upstream port —
    #: they are only re-run when an input actually changes.  Leave False
    #: for custom policies unless the property is known to hold.
    stable: bool = False
    #: Period of :meth:`epoch` in cycles, when the epoch is
    #: time-varying: ``epoch(c) == epoch(c')`` whenever
    #: ``c // epoch_period == c' // epoch_period``.  The network's
    #: quiescence fast-forward pins jumps at these boundaries so a
    #: rotating policy re-evaluates exactly where stepping would.
    #: ``None`` (the default) declares a time-invariant epoch; a policy
    #: whose epoch varies without declaring its period disables
    #: fast-forward (conservative).
    epoch_period: Optional[int] = None
    #: A stronger property than a declared period: the healthy-path
    #: :meth:`decide` never reads ``ctx.cycle`` at all — the decision is
    #: a pure function of VC states, traffic bit and sensor input.  The
    #: fast-forward planner then skips the policy's epoch boundaries
    #: entirely: re-evaluating after a jump with an unchanged context
    #: reproduces the already-applied decision, so no commands are
    #: issued and nothing observable differs from stepping.  Policies
    #: whose candidate rotates with the cycle (round-robin) must leave
    #: this False.  Only consulted while the engine is healthy; a policy
    #: with a cycle-dependent *degraded* fallback may still declare it,
    #: because fast-forward eligibility requires fault-free sensors,
    #: whose heartbeats provably keep the watchdog below both the
    #: staleness and plausibility thresholds.
    cycle_free_decide: bool = False
    #: Telemetry handle + track id (see repro.telemetry.runtime);
    #: class-level ``None``/0 keeps untraced runs zero-cost.
    trace = None
    trace_tid: int = 0

    def decide(self, ctx: PolicyContext) -> PolicyDecision:
        """Evaluate the pre-VA stage for one cycle."""
        raise NotImplementedError

    def epoch(self, cycle: int) -> int:
        """Time-dependence bucket for memoization.

        A stable policy is re-evaluated whenever its epoch changes even
        if no port input changed (e.g. the round-robin candidate
        rotation).  Time-independent policies return a constant.
        """
        return 0

    def reset(self) -> None:
        """Clear per-port state (default: nothing to clear)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def states_of(states: Sequence[str]) -> Tuple[OutVCState, ...]:
    """Build a ``vc_states`` tuple from short strings (test helper).

    >>> states_of(["idle", "active", "recovery"])
    (<OutVCState.IDLE: 'idle'>, <OutVCState.ACTIVE: 'active'>, <OutVCState.RECOVERY: 'recovery'>)
    """
    return tuple(OutVCState(s) for s in states)
