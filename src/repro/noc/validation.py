"""On-demand structural validation of a live network.

The simulator's data structures enforce many invariants inline (credit
under/overflow, buffer overflow, push-into-gated, packet mixing raise
immediately).  :func:`validate_network` sweeps the *cross-cutting*
invariants that no single operation can check — upstream/downstream
state agreement, conservation, wormhole consistency — and returns a
list of violation descriptions (empty = healthy).

Intended uses: debugging new policies/topologies
(``Network.run(..., validate_every=N)``), and the test suite's fuzzing
harness.  A full sweep is O(network size), so per-cycle validation is
for small repros only.
"""

from __future__ import annotations

from typing import List

from repro.noc.buffer import PowerState
from repro.noc.policy_api import OutVCState
from repro.noc.topology import LOCAL, port_name


def validate_network(network) -> List[str]:
    """Sweep all cross-cutting invariants; return violation strings."""
    violations: List[str] = []
    violations.extend(_validate_buffers(network))
    violations.extend(_validate_credit_bounds(network))
    violations.extend(_validate_power_agreement(network))
    violations.extend(_validate_wormhole_state(network))
    violations.extend(_validate_conservation(network))
    return violations


def _validate_buffers(network) -> List[str]:
    out = []
    for router in network.routers:
        for port in router.input_ports:
            for vc, ivc in enumerate(router.inputs[port].unit.vcs):
                where = f"router {router.router_id} {port_name(port)} VC{vc}"
                if len(ivc.buffer) > ivc.buffer.capacity:
                    out.append(f"{where}: occupancy beyond capacity")
                if ivc.buffer.state is PowerState.GATED:
                    if not ivc.buffer.is_empty:
                        out.append(f"{where}: gated buffer holds flits")
                    if ivc.busy:
                        out.append(f"{where}: gated buffer owns a packet")
                if ivc.busy and ivc.outport is None:
                    out.append(f"{where}: resident packet without a route")
    return out


def _validate_credit_bounds(network) -> List[str]:
    out = []
    for router in network.routers:
        for port in router.output_ports:
            upstream = router.outputs[port].upstream
            for vc, entry in enumerate(upstream.entries):
                if not 0 <= entry.credits <= entry.max_credits:
                    out.append(
                        f"router {router.router_id} out {port_name(port)} "
                        f"VC{vc}: credits {entry.credits} outside "
                        f"[0, {entry.max_credits}]"
                    )
    return out


def _upstream_of(network, node, port):
    """The upstream port driving a router's input port."""
    if port == LOCAL:
        return network.interfaces[node].injection_port
    from repro.noc.network import neighbor_of_inverse

    up_node, up_port = neighbor_of_inverse(network.topology, node, port)
    return network.routers[up_node].outputs[up_port].upstream


def _validate_power_agreement(network) -> List[str]:
    """The upstream's power view must agree with the downstream buffers
    (modulo commands still in flight on the Up_Down channel)."""
    out = []
    for router in network.routers:
        for port in router.input_ports:
            upstream = _upstream_of(network, router.router_id, port)
            in_flight = router.inputs[port].control_channel.in_flight
            if in_flight:
                continue  # commands pending: views may legally differ
            for vc, ivc in enumerate(router.inputs[port].unit.vcs):
                gated_down = ivc.buffer.state is PowerState.GATED
                gated_up = upstream.entries[vc].gated
                if gated_up != gated_down and ivc.buffer.state is not PowerState.WAKING:
                    out.append(
                        f"router {router.router_id} {port_name(port)} VC{vc}: "
                        f"upstream gated={gated_up} but buffer is "
                        f"{ivc.buffer.state.value}"
                    )
    return out


def _validate_wormhole_state(network) -> List[str]:
    """Flits inside a buffer must all belong to the resident packet, in
    seq order, and ACTIVE out-VC entries must map to a real packet."""
    out = []
    for router in network.routers:
        for port in router.input_ports:
            for vc, ivc in enumerate(router.inputs[port].unit.vcs):
                where = f"router {router.router_id} {port_name(port)} VC{vc}"
                flits = ivc.buffer.flits
                if flits and not ivc.busy:
                    out.append(f"{where}: flits buffered but VC not busy")
                pids = {f.packet_id for f in flits}
                if len(pids) > 1:
                    out.append(f"{where}: packet mixing {sorted(pids)}")
                seqs = [f.seq for f in flits]
                if seqs != sorted(seqs):
                    out.append(f"{where}: flits out of order {seqs}")
        for port in router.output_ports:
            upstream = router.outputs[port].upstream
            for vc, entry in enumerate(upstream.entries):
                if entry.state is OutVCState.ACTIVE and entry.gated:
                    out.append(
                        f"router {router.router_id} out {port_name(port)} "
                        f"VC{vc}: ACTIVE entry is gated"
                    )
    return out


def _validate_conservation(network) -> List[str]:
    """Injected flits = ejected + in flight (counted everywhere)."""
    injected = sum(ni.flits_injected for ni in network.interfaces)
    ejected = sum(ni.flits_ejected for ni in network.interfaces)
    in_flight = network.in_flight_flits()
    pending = sum(ni.pending_flits for ni in network.interfaces)
    # in_flight_flits() includes NI pending queues.  The baseline is 0
    # from build and re-based by Network.reset_stats, so the check also
    # holds after a mid-run warm-up counter reset.
    baseline = getattr(network, "conservation_baseline", 0)
    if injected + pending != ejected + in_flight + baseline:
        return [
            f"conservation violated: injected={injected} pending={pending} "
            f"ejected={ejected} in_flight={in_flight} (baseline {baseline})"
        ]
    return []
