"""Routing algorithms: XY dimension-order (the paper's), YX and ring.

A routing algorithm maps ``(current router, destination node)`` to an
output port.  XY on a mesh is minimal and deadlock-free under wormhole
switching with per-packet VC holding, which is what the simulator
implements.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.noc.topology import (
    EAST,
    LOCAL,
    Mesh2D,
    NORTH,
    Ring,
    SOUTH,
    Topology,
    WEST,
)


class RoutingAlgorithm:
    """Base class: stateless per-hop route computation."""

    name = "abstract"

    def __init__(self, topology: Topology) -> None:
        self.topology = topology

    def route(self, router: int, dst: int) -> int:
        """Output port to take at ``router`` toward node ``dst``.

        Returns :data:`~repro.noc.topology.LOCAL` when the packet has
        arrived.
        """
        raise NotImplementedError


class _DimensionOrder(RoutingAlgorithm):
    """Shared logic of XY and YX dimension-order routing on a mesh."""

    #: Which coordinate to exhaust first: 0 = x, 1 = y.
    first_axis = 0

    def __init__(self, topology: Topology) -> None:
        if not isinstance(topology, Mesh2D):
            raise TypeError(
                f"{type(self).__name__} requires a Mesh2D/Torus2D topology, "
                f"got {type(topology).__name__}"
            )
        super().__init__(topology)
        self._cache: Dict[Tuple[int, int], int] = {}

    def route(self, router: int, dst: int) -> int:
        key = (router, dst)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        port = self._compute(router, dst)
        self._cache[key] = port
        return port

    def _compute(self, router: int, dst: int) -> int:
        topo = self.topology
        cx, cy = topo.coordinates(router)
        dx, dy = topo.coordinates(dst)
        if (cx, cy) == (dx, dy):
            return LOCAL
        steps = self._axis_steps(cx, cy, dx, dy)
        return steps[0]

    def _axis_steps(self, cx: int, cy: int, dx: int, dy: int):
        x_port = EAST if dx > cx else WEST
        y_port = SOUTH if dy > cy else NORTH
        out = []
        if self.first_axis == 0:
            if dx != cx:
                out.append(x_port)
            if dy != cy:
                out.append(y_port)
        else:
            if dy != cy:
                out.append(y_port)
            if dx != cx:
                out.append(x_port)
        return out


class XYRouting(_DimensionOrder):
    """Classic XY: exhaust the x offset, then the y offset."""

    name = "xy"
    first_axis = 0


class YXRouting(_DimensionOrder):
    """YX: exhaust the y offset first (also deadlock-free on a mesh)."""

    name = "yx"
    first_axis = 1


class RingRouting(RoutingAlgorithm):
    """Shortest-direction routing on a bidirectional ring.

    Ties (exactly half-way around an even ring) go EAST so that routing
    stays deterministic.
    """

    name = "ring"

    def __init__(self, topology: Topology) -> None:
        if not isinstance(topology, Ring):
            raise TypeError(
                f"RingRouting requires a Ring topology, got {type(topology).__name__}"
            )
        super().__init__(topology)

    def route(self, router: int, dst: int) -> int:
        n = self.topology.num_nodes
        self.topology.validate_node(router)
        self.topology.validate_node(dst)
        if router == dst:
            return LOCAL
        forward = (dst - router) % n
        return EAST if forward <= n - forward else WEST


def build_routing(name: str, topology: Topology) -> RoutingAlgorithm:
    """Instantiate a routing algorithm by name for a topology.

    ``"auto"`` picks XY for meshes/tori and shortest-path for rings.
    """
    lowered = name.lower()
    if lowered == "auto":
        lowered = "ring" if isinstance(topology, Ring) else "xy"
    algorithms = {"xy": XYRouting, "yx": YXRouting, "ring": RingRouting}
    try:
        cls = algorithms[lowered]
    except KeyError:
        known = ", ".join(sorted(algorithms) + ["auto"])
        raise ValueError(f"unknown routing {name!r}; known: {known}") from None
    return cls(topology)
