"""Faulty control channels: drop, delay and corrupt link items.

A :class:`FaultyChannel` is a drop-in :class:`~repro.noc.link.Channel`
replacement the :class:`~repro.faults.injector.FaultInjector` swaps into
the wiring of a targeted port.  Within the fault's activity window it

* drops sent items with a per-item probability (optionally filtered,
  e.g. only ``("wake", vc)`` commands),
* adds a fixed extra delay to every sent item, and/or
* injects spurious receiver-side items (wire noise) with a per-cycle
  probability, drawn uniformly from ``noise_values``.

Outside the window it behaves exactly like the channel it replaced.
All randomness comes from a private ``random.Random`` seeded via
:func:`repro.faults.spec.derive_seed`, so runs are reproducible across
processes and across serial/parallel execution.
"""

from __future__ import annotations

import heapq
import random
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.noc.link import Channel

T = TypeVar("T")


class FaultyChannel(Channel[T]):
    """A channel that misbehaves during a fault's activity window.

    Parameters
    ----------
    name, latency:
        As for :class:`Channel` (copy them from the replaced channel).
    onset, duration:
        Activity window ``[onset, onset + duration)``; ``None`` duration
        never ends.
    drop_probability:
        Per-sent-item drop chance while active.
    drop_filter:
        Optional predicate restricting which items may be dropped.
    extra_delay:
        Extra cycles added to each item sent while active.
    noise_probability:
        Per-cycle chance of injecting one spurious item on the receive
        side while active (consulted at most once per cycle).
    noise_values:
        Candidate spurious items (e.g. ``range(total_vcs)`` for a
        Down_Up channel); required when ``noise_probability > 0``.
    seed:
        Seed of the private fault RNG.
    """

    __slots__ = (
        "onset", "duration", "drop_probability", "drop_filter",
        "extra_delay", "noise_probability", "noise_values",
        "dropped", "delayed", "corrupted",
        "_seq", "_rng", "_last_noise_cycle",
    )

    def __init__(
        self,
        name: str,
        latency: int = 1,
        onset: int = 0,
        duration: Optional[int] = None,
        drop_probability: float = 0.0,
        drop_filter: Optional[Callable[[T], bool]] = None,
        extra_delay: int = 0,
        noise_probability: float = 0.0,
        noise_values: Sequence[T] = (),
        seed: int = 0,
    ) -> None:
        super().__init__(name, latency)
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError(f"drop_probability must be in [0, 1], got {drop_probability}")
        if not 0.0 <= noise_probability <= 1.0:
            raise ValueError(f"noise_probability must be in [0, 1], got {noise_probability}")
        if extra_delay < 0:
            raise ValueError(f"extra_delay must be >= 0, got {extra_delay}")
        if noise_probability > 0.0 and not noise_values:
            raise ValueError("noise_probability > 0 needs noise_values")
        self.onset = onset
        self.duration = duration
        self.drop_probability = drop_probability
        self.drop_filter = drop_filter
        self.extra_delay = extra_delay
        self.noise_probability = noise_probability
        self.noise_values = list(noise_values)
        self.dropped = 0
        self.delayed = 0
        self.corrupted = 0
        self._seq = 0
        # Extra delay can put a later send in front of an earlier one,
        # so this subclass swaps the base FIFO deque for a real heap of
        # (due, seq, item): the monotone seq keeps same-due items in
        # send order, exactly the pre-deque DelayLine behavior.
        self._queue = []
        self._rng = random.Random(seed)
        self._last_noise_cycle = -1

    def active(self, cycle: int) -> bool:
        if cycle < self.onset:
            return False
        return self.duration is None or cycle < self.onset + self.duration

    def adopt(self, old: Channel[T]) -> "FaultyChannel[T]":
        """Take over an existing channel's in-flight items (swap helper)."""
        # The donor's FIFO deque is already due-sorted, which is a valid
        # heap; re-tag its items with this channel's sequence numbers.
        self._queue = [
            (due, seq, item) for seq, (due, item) in enumerate(old._queue)
        ]
        self._seq = len(self._queue)
        return self

    def send(self, item: T, cycle: int) -> None:
        due = cycle + self.latency
        if self.active(cycle):
            if (
                self.drop_probability > 0.0
                and (self.drop_filter is None or self.drop_filter(item))
                and self._rng.random() < self.drop_probability
            ):
                self.dropped += 1
                return
            if self.extra_delay:
                self.delayed += 1
                due += self.extra_delay
        heapq.heappush(self._queue, (due, self._seq, item))
        self._seq += 1
        if self.on_send is not None:
            self.on_send(due)

    def pop_ready(self, cycle: int) -> List[T]:
        queue = self._queue
        out: List[T] = []
        while queue and queue[0][0] <= cycle:
            out.append(heapq.heappop(queue)[2])
        if (
            self.noise_probability > 0.0
            and cycle != self._last_noise_cycle
            and self.active(cycle)
        ):
            self._last_noise_cycle = cycle
            if self._rng.random() < self.noise_probability:
                spurious = self._rng.choice(self.noise_values)
                self.corrupted += 1
                out.append(spurious)
        return out
