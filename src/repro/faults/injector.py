"""Install :class:`FaultSpec` hooks into a built :class:`Network`.

The injector is the only component that knows where each fault kind
physically lives:

* sensor faults install a :class:`SensorBankFault` as the targeted
  ``SensorBank.fault`` hook,
* Down_Up / Up_Down faults swap the targeted control channel for a
  :class:`~repro.faults.channels.FaultyChannel` (both the sender's and
  the receiver's reference, so the wiring stays consistent),
* stuck-gated faults install per-buffer ``wake_fault`` hooks, and
* kinds that can lose wake commands (``up-down-drop``, ``stuck-gated``)
  additionally arm the emergency wake-on-arrival relaxation
  (``VCBuffer.on_push_unpowered``) on the targeted buffers so the
  network degrades instead of crashing (documented in
  docs/RESILIENCE.md; the power-agreement validator tolerates the
  transient disagreement only for these kinds).

The simulator core stays fault-free unless ``apply`` is called; every
hook's randomness is seeded via :func:`repro.faults.spec.derive_seed`.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.noc.network import Network, neighbor_of_inverse
from repro.noc.topology import LOCAL, port_id
from repro.faults.channels import FaultyChannel
from repro.faults.spec import DOWN_UP_KINDS, FaultSpec, derive_seed
from repro.telemetry import probes


class SensorBankFault:
    """``SensorBank.fault`` hook: dropout or stuck-at behaviour.

    ``sensor-dropout`` suppresses measurements inside the activity
    window — the verdict freezes and, because the bank's
    ``last_sample_cycle`` stops advancing, the router stops emitting the
    Down_Up heartbeat (which is exactly what the upstream staleness
    watchdog detects).  ``stuck-sensor`` keeps measuring but distorts
    the outcome: a pinned device reading or a pinned reported VC.
    """

    __slots__ = ("spec", "samples_dropped", "stuck_reports", "trace", "_cycle")

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self.samples_dropped = 0
        self.stuck_reports = 0
        self.trace = None
        self._cycle = -1

    def sample(self, bank, cycle: int) -> int:
        self._cycle = cycle
        spec = self.spec
        if not spec.active(cycle):
            return bank._sample(cycle)
        if spec.kind == "sensor-dropout":
            due = (
                bank._last_sample_cycle < 0
                or cycle - bank._last_sample_cycle >= bank.sample_period
            )
            if due:
                self.samples_dropped += 1
                if self.trace is not None:
                    self.trace.instant(
                        probes.FAULT_SAMPLE_DROPPED, "fault",
                        tid=bank.trace_id, ts=cycle,
                    )
            return bank._last_md
        # stuck-sensor: measure normally, then distort.
        md = bank._sample(cycle)
        if spec.stuck_reading is not None and bank._last_sample_cycle == cycle:
            vc = spec.vc if spec.vc is not None else 0
            bank._last_readings[vc % len(bank.devices)] = spec.stuck_reading
            bank._last_md = bank._argmax(bank._last_readings)
            md = bank._last_md
        return md

    def most_degraded_in(self, bank, start: int, count: int) -> int:
        spec = self.spec
        if (
            spec.kind == "stuck-sensor"
            and spec.stuck_vc is not None
            and spec.active(self._cycle)
        ):
            self.stuck_reports += 1
            if self.trace is not None:
                self.trace.instant(
                    probes.FAULT_STUCK_REPORT, "fault",
                    tid=bank.trace_id,
                    args={"vc": start + (spec.stuck_vc % count)},
                    ts=self._cycle,
                )
            return start + (spec.stuck_vc % count)
        return bank._most_degraded_in(start, count)


class WakeFault:
    """``VCBuffer.wake_fault`` hook: lose or slow wake commands."""

    __slots__ = ("spec", "clock", "blocked", "delayed", "trace", "_rng")

    def __init__(self, spec: FaultSpec, clock: Callable[[], int], seed: int) -> None:
        self.spec = spec
        self.clock = clock
        self.blocked = 0
        self.delayed = 0
        self.trace = None
        self._rng = random.Random(seed)

    def __call__(self, latency: int) -> Optional[int]:
        spec = self.spec
        if not spec.active(self.clock()):
            return latency
        if self._rng.random() >= spec.rate:
            return latency
        if spec.extra_wake_cycles is None:
            self.blocked += 1
            if self.trace is not None:
                self.trace.instant(
                    probes.FAULT_WAKE_BLOCKED, "fault", ts=self.clock()
                )
            return None
        self.delayed += 1
        if self.trace is not None:
            self.trace.instant(
                probes.FAULT_WAKE_DELAYED, "fault",
                args={"extra": spec.extra_wake_cycles}, ts=self.clock(),
            )
        return latency + spec.extra_wake_cycles


class EmergencyWake:
    """``VCBuffer.on_push_unpowered`` hook: wake-on-arrival relaxation.

    Models a buffer whose arriving flit energizes the rail itself (the
    wordline doubles as a wake signal).  Unconditional — once a wake has
    been lost, the stranded flit may arrive long after the fault's
    window closed and must still be absorbed rather than crash.
    """

    __slots__ = ("count", "trace")

    def __init__(self) -> None:
        self.count = 0
        self.trace = None

    def __call__(self, buffer, flit) -> bool:
        self.count += 1
        if self.trace is not None:
            self.trace.instant(
                probes.FAULT_EMERGENCY_WAKE, "fault", tid=buffer.trace_id
            )
        return True


class FaultInjector:
    """Applies a list of :class:`FaultSpec` to a built network.

    Parameters
    ----------
    specs:
        The faults to install.  At most one spec may target a given
        (site, channel) pair — stacking two faults on one physical wire
        is rejected rather than silently composed.
    master_seed:
        Campaign-level seed mixed into every per-spec RNG.
    """

    def __init__(self, specs: Sequence[FaultSpec], master_seed: int = 0) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.master_seed = master_seed
        self.bank_faults: List[SensorBankFault] = []
        self.down_up_channels: List[FaultyChannel] = []
        self.up_down_channels: List[FaultyChannel] = []
        self.wake_faults: List[WakeFault] = []
        self.emergency_wakes: List[EmergencyWake] = []
        self._applied = False

    # ------------------------------------------------------------------
    def apply(self, network: Network) -> "FaultInjector":
        """Install every spec's hooks; idempotence is not supported."""
        if self._applied:
            raise RuntimeError("FaultInjector.apply may only be called once")
        self._applied = True
        # Fault hooks (onset windows, per-cycle drops, watchdog
        # degradation accounting) act on arbitrary cycles, so faulted
        # runs must step every cycle.
        network.allow_fast_forward = False
        taken: Dict[Tuple[int, int, str], FaultSpec] = {}
        for spec in self.specs:
            node, pid = self._resolve_site(network, spec)
            wire = (
                "down_up" if spec.kind in DOWN_UP_KINDS
                else "up_down" if spec.kind == "up-down-drop"
                else spec.kind
            )
            key = (node, pid, wire)
            if key in taken:
                raise ValueError(
                    f"faults {taken[key]} and {spec} target the same site"
                )
            taken[key] = spec
            if spec.kind in ("stuck-sensor", "sensor-dropout"):
                self._install_bank_fault(network, spec, node, pid)
            elif spec.kind in DOWN_UP_KINDS:
                self._swap_down_up(network, spec, node, pid)
            elif spec.kind == "up-down-drop":
                self._swap_up_down(network, spec, node, pid)
            elif spec.kind == "stuck-gated":
                self._install_wake_fault(network, spec, node, pid)
            else:  # pragma: no cover - FaultSpec validates kinds
                raise AssertionError(f"unhandled fault kind {spec.kind}")
        return self

    # ------------------------------------------------------------------
    def _resolve_site(self, network: Network, spec: FaultSpec) -> Tuple[int, int]:
        if not 0 <= spec.router < len(network.routers):
            raise ValueError(
                f"fault targets router {spec.router} but the network has "
                f"{len(network.routers)} routers"
            )
        pid = port_id(spec.port)
        router = network.routers[spec.router]
        if pid not in router.inputs:
            have = sorted(router.inputs)
            raise ValueError(
                f"router {spec.router} has no input port {spec.port!r} "
                f"(ports: {have})"
            )
        return spec.router, pid

    def _install_bank_fault(self, network: Network, spec: FaultSpec, node: int, pid: int) -> None:
        bank = network.routers[node].inputs[pid].unit.sensor_bank
        if bank is None:
            raise ValueError(f"no sensor bank at router {node} port {spec.port!r}")
        if bank.fault is not None:
            raise ValueError(
                f"sensor bank at router {node} port {spec.port!r} already faulted"
            )
        fault = SensorBankFault(spec)
        bank.fault = fault
        self.bank_faults.append(fault)

    def _swap_down_up(self, network: Network, spec: FaultSpec, node: int, pid: int) -> None:
        router = network.routers[node]
        old = router.down_up_channels[pid]
        faulty: FaultyChannel = FaultyChannel(
            old.name,
            old.latency,
            onset=spec.onset,
            duration=spec.duration,
            drop_probability=spec.rate if spec.kind == "down-up-drop" else 0.0,
            extra_delay=spec.delay if spec.kind == "down-up-delay" else 0,
            noise_probability=spec.rate if spec.kind == "down-up-corrupt" else 0.0,
            noise_values=(
                list(range(network.config.total_vcs))
                if spec.kind == "down-up-corrupt" else ()
            ),
            seed=derive_seed(spec, self.master_seed, "down_up"),
        ).adopt(old)
        router.down_up_channels[pid] = faulty
        if pid == LOCAL:
            network.interfaces[node]._inj_down_up_channel = faulty
        else:
            up_node, up_port = neighbor_of_inverse(network.topology, node, pid)
            network.routers[up_node].outputs[up_port].down_up_channel = faulty
        self.down_up_channels.append(faulty)

    def _swap_up_down(self, network: Network, spec: FaultSpec, node: int, pid: int) -> None:
        wiring = network.routers[node].inputs[pid]
        old = wiring.control_channel
        drop_filter = None
        if spec.command is not None:
            wanted = spec.command
            drop_filter = lambda item, _w=wanted: item[0] == _w
        faulty: FaultyChannel = FaultyChannel(
            old.name,
            old.latency,
            onset=spec.onset,
            duration=spec.duration,
            drop_probability=spec.rate,
            drop_filter=drop_filter,
            seed=derive_seed(spec, self.master_seed, "up_down"),
        ).adopt(old)
        wiring.control_channel = faulty
        if pid == LOCAL:
            network.interfaces[node].injection_port.control_channel = faulty
        else:
            up_node, up_port = neighbor_of_inverse(network.topology, node, pid)
            network.routers[up_node].outputs[up_port].upstream.control_channel = faulty
        self.up_down_channels.append(faulty)
        # Lost wakes would otherwise hard-crash on the next flit arrival.
        if spec.command != "gate":
            self._arm_emergency_wake(network, spec, node, pid)

    def _install_wake_fault(self, network: Network, spec: FaultSpec, node: int, pid: int) -> None:
        unit = network.routers[node].inputs[pid].unit
        clock = lambda: network.cycle
        for vc, ivc in enumerate(unit.vcs):
            if spec.vc is not None and vc != spec.vc:
                continue
            fault = WakeFault(
                spec, clock, derive_seed(spec, self.master_seed, f"wake{vc}")
            )
            ivc.buffer.wake_fault = fault
            self.wake_faults.append(fault)
        self._arm_emergency_wake(network, spec, node, pid)

    def _arm_emergency_wake(self, network: Network, spec: FaultSpec, node: int, pid: int) -> None:
        unit = network.routers[node].inputs[pid].unit
        for vc, ivc in enumerate(unit.vcs):
            if spec.vc is not None and vc != spec.vc:
                continue
            if ivc.buffer.on_push_unpowered is None:
                hook = EmergencyWake()
                ivc.buffer.on_push_unpowered = hook
                self.emergency_wakes.append(hook)

    # ------------------------------------------------------------------
    def attach_telemetry(self, tracer) -> None:
        """Point every installed hook at a tracer (see repro.telemetry).

        Call after :meth:`apply`; fault activity then shows up as
        ``fault.*`` instant events alongside the component probes.
        """
        for fault in self.bank_faults:
            fault.trace = tracer
        for fault in self.wake_faults:
            fault.trace = tracer
        for hook in self.emergency_wakes:
            hook.trace = tracer

    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        """Aggregate fault-activity counters across every installed hook."""
        return {
            "sensor_samples_dropped": sum(f.samples_dropped for f in self.bank_faults),
            "sensor_stuck_reports": sum(f.stuck_reports for f in self.bank_faults),
            "down_up_dropped": sum(c.dropped for c in self.down_up_channels),
            "down_up_delayed": sum(c.delayed for c in self.down_up_channels),
            "down_up_corrupted": sum(c.corrupted for c in self.down_up_channels),
            "up_down_dropped": sum(c.dropped for c in self.up_down_channels),
            "wakes_blocked": sum(f.blocked for f in self.wake_faults),
            "wakes_delayed": sum(f.delayed for f in self.wake_faults),
            "emergency_wakes": sum(h.count for h in self.emergency_wakes),
        }
