"""Fault injection and resilience campaigns for the sensor-wise control plane.

The package keeps the simulator core fault-free by default: faults are
declarative :class:`FaultSpec` records that a :class:`FaultInjector`
turns into hooks on a *built* network (sensor-bank hooks, swapped
control channels, per-buffer wake hooks).  :mod:`repro.faults.campaign`
sweeps kinds × rates × policies and renders the resilience report used
by the ``fault-campaign`` CLI subcommand.
"""

from repro.faults.spec import DOWN_UP_KINDS, FAULT_KINDS, FaultSpec, derive_seed
from repro.faults.channels import FaultyChannel
from repro.faults.injector import (
    EmergencyWake,
    FaultInjector,
    SensorBankFault,
    WakeFault,
)

#: Campaign API re-exported lazily (PEP 562): repro.experiments.config
#: imports repro.faults.spec, and repro.faults.campaign imports
#: repro.experiments — an eager import here would close that cycle.
_CAMPAIGN_EXPORTS = (
    "FaultCampaignConfig",
    "ResilienceReport",
    "ResilienceRow",
    "campaign_cells",
    "make_specs",
    "run_fault_campaign",
)


def __getattr__(name):
    if name in _CAMPAIGN_EXPORTS:
        from repro.faults import campaign

        return getattr(campaign, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "DOWN_UP_KINDS",
    "FAULT_KINDS",
    "FaultSpec",
    "derive_seed",
    "FaultyChannel",
    "EmergencyWake",
    "FaultInjector",
    "SensorBankFault",
    "WakeFault",
    "FaultCampaignConfig",
    "ResilienceReport",
    "ResilienceRow",
    "campaign_cells",
    "make_specs",
    "run_fault_campaign",
]
