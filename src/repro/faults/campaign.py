"""Fault campaigns: sweep fault kinds × rates × policies, report resilience.

A fault campaign measures how gracefully the sensor-wise methodology
degrades: for every fault kind and rate it runs the same scenario (same
traffic, same process variation) under each policy, with the fault
attached to one input port, and reports

* duty-cycle and latency deltas vs. the fault-free baseline row,
* the fraction of measured cycles the faulted port spent in degraded
  (sensor-less fallback) mode, and
* :func:`~repro.noc.validation.validate_network` violation counts
  sampled every ``validate_every`` cycles.

Rate semantics per kind: the stochastic kinds (``down-up-drop``,
``down-up-corrupt``, ``up-down-drop``, ``stuck-gated``) use the rate as
their per-event probability over the whole run; the deterministic kinds
(``sensor-dropout``, ``stuck-sensor``) use it as the *fraction of the
run* the fault is active (rate 1.0 = permanently broken).  Rate 0.0 is
the shared fault-free baseline.

Reports are deterministic: the JSON payload contains no wall-clock
times, so identical seeds + specs give byte-identical reports across
serial and parallel execution (asserted by ``tests/test_faults.py``).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.checkpoint import CampaignInterrupted, CheckpointManager
from repro.experiments.config import ScenarioConfig
from repro.experiments.parallel import Executor, ScenarioFailure, WorkUnit
from repro.experiments.runner import ScenarioResult
from repro.faults.spec import FaultSpec

#: Kinds whose campaign rate scales the activity window, not a probability.
_WINDOW_KINDS = ("sensor-dropout", "stuck-sensor")


@dataclasses.dataclass(frozen=True)
class FaultCampaignConfig:
    """Parameters of one fault-campaign sweep."""

    num_nodes: int = 4
    num_vcs: int = 2
    injection_rate: float = 0.1
    cycles: int = 2_000
    warmup: int = 500
    seed: int = 1
    #: Campaign default is much shorter than the paper's 1024 so the
    #: staleness watchdog (≈ 2 sample periods) can trip within short
    #: campaign runs.
    sensor_sample_period: int = 128
    kinds: Tuple[str, ...] = (
        "sensor-dropout",
        "stuck-sensor",
        "down-up-drop",
        "down-up-corrupt",
        "up-down-drop",
        "stuck-gated",
    )
    fault_rates: Tuple[float, ...] = (0.0, 0.5, 1.0)
    policies: Tuple[str, ...] = ("rr-no-sensor", "sensor-wise")
    #: Invariant-sweep period in cycles (0 disables violation counting).
    validate_every: int = 16
    fault_router: int = 0
    fault_port: str = "east"

    def __post_init__(self) -> None:
        if not self.kinds:
            raise ValueError("a fault campaign needs at least one kind")
        if not self.policies:
            raise ValueError("a fault campaign needs at least one policy")
        if any(r < 0.0 or r > 1.0 for r in self.fault_rates):
            raise ValueError(f"fault rates must be in [0, 1], got {self.fault_rates}")
        for attr in ("kinds", "fault_rates", "policies"):
            value = getattr(self, attr)
            if not isinstance(value, tuple):
                object.__setattr__(self, attr, tuple(value))


def make_specs(kind: str, rate: float, config: FaultCampaignConfig) -> Tuple[FaultSpec, ...]:
    """The FaultSpec list for one (kind, rate) campaign cell."""
    if rate <= 0.0:
        return ()
    total_cycles = config.warmup + config.cycles
    window: Dict[str, Union[int, None]] = {"onset": 0, "duration": None}
    if kind in _WINDOW_KINDS and rate < 1.0:
        window["duration"] = max(1, int(rate * total_cycles))
    common = dict(
        router=config.fault_router,
        port=config.fault_port,
        seed=config.seed,
        **window,
    )
    if kind == "sensor-dropout":
        return (FaultSpec(kind, **common),)
    if kind == "stuck-sensor":
        # Pin the report to the last VC: with the frozen-PV tie-break
        # this is reliably *not* the true most-degraded VC, so the
        # policy provably recovers the wrong buffer while stuck.
        return (FaultSpec(kind, stuck_vc=config.num_vcs - 1, **common),)
    if kind == "down-up-drop":
        return (FaultSpec(kind, rate=rate, **common),)
    if kind == "down-up-delay":
        return (FaultSpec(kind, delay=max(1, int(round(rate * 16))), **common),)
    if kind == "down-up-corrupt":
        return (FaultSpec(kind, rate=rate, **common),)
    if kind == "up-down-drop":
        return (FaultSpec(kind, rate=rate, **common),)
    if kind == "stuck-gated":
        return (FaultSpec(kind, rate=rate, extra_wake_cycles=None, **common),)
    raise ValueError(f"unknown campaign fault kind {kind!r}")


@dataclasses.dataclass
class ResilienceRow:
    """One campaign cell: a policy under one fault kind at one rate."""

    policy: str
    kind: str
    rate: float
    md_duty: Optional[float] = None
    mean_duty: Optional[float] = None
    avg_latency: Optional[float] = None
    p95_latency: Optional[float] = None
    degrade_events: Optional[int] = None
    degraded_pct: Optional[float] = None
    violations: Optional[int] = None
    fault_counters: Optional[Dict[str, int]] = None
    #: Set instead of the metrics when the scenario crashed or hung.
    failure: Optional[str] = None


@dataclasses.dataclass
class ResilienceReport:
    """Outcome of :func:`run_fault_campaign`."""

    config: FaultCampaignConfig
    rows: List[ResilienceRow]
    executor_summary: str = ""

    def baseline(self, policy: str) -> Optional[ResilienceRow]:
        """The fault-free (rate 0) row of one policy."""
        for row in self.rows:
            if row.policy == policy and row.kind == "none" and row.failure is None:
                return row
        return None

    def to_json(self) -> str:
        """Deterministic JSON payload (no wall-clock times)."""
        payload = {
            "config": dataclasses.asdict(self.config),
            "rows": [dataclasses.asdict(row) for row in self.rows],
        }
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"

    def to_markdown(self) -> str:
        lines = [
            "# Fault-campaign resilience report",
            "",
            f"mesh {self.config.num_nodes} nodes x {self.config.num_vcs} VCs, "
            f"injection {self.config.injection_rate:.2f} flits/cycle/node, "
            f"{self.config.cycles} measured cycles (+{self.config.warmup} warm-up), "
            f"sample period {self.config.sensor_sample_period}, "
            f"fault site: router {self.config.fault_router} "
            f"{self.config.fault_port} input port.",
            "",
            "Deltas are vs. the same policy's fault-free baseline row. "
            "`degr%` is the share of measured cycles the faulted port ran "
            "its sensor-less fallback.",
            "",
            "| policy | fault | rate | MD duty % | Δduty | avg lat | Δlat | "
            "p95 lat | degr evts | degr% | violations |",
            "|---|---|---|---|---|---|---|---|---|---|---|",
        ]
        for row in self.rows:
            if row.failure is not None:
                lines.append(
                    f"| {row.policy} | {row.kind} | {row.rate:.2f} | "
                    f"FAILED: {row.failure} |||||||||"
                )
                continue
            base = self.baseline(row.policy)
            if base is not None and base is not row and base.md_duty is not None:
                d_duty = f"{row.md_duty - base.md_duty:+.2f}"
                d_lat = f"{row.avg_latency - base.avg_latency:+.2f}"
            else:
                d_duty = d_lat = "—"
            lines.append(
                f"| {row.policy} | {row.kind} | {row.rate:.2f} "
                f"| {row.md_duty:.2f} | {d_duty} "
                f"| {row.avg_latency:.2f} | {d_lat} "
                f"| {row.p95_latency:.0f} "
                f"| {row.degrade_events} | {row.degraded_pct:.1f} "
                f"| {row.violations} |"
            )
        if self.executor_summary:
            lines.extend(["", f"_{self.executor_summary}_"])
        return "\n".join(lines) + "\n"


def _cell_scenario(
    config: FaultCampaignConfig, policy: str, kind: str, rate: float
) -> ScenarioConfig:
    return ScenarioConfig(
        num_nodes=config.num_nodes,
        num_vcs=config.num_vcs,
        injection_rate=config.injection_rate,
        policy=policy,
        cycles=config.cycles,
        warmup=config.warmup,
        seed=config.seed,
        sensor_sample_period=config.sensor_sample_period,
        faults=make_specs(kind, rate, config),
        validate_every=config.validate_every,
    )


def campaign_cells(config: FaultCampaignConfig) -> List[Tuple[str, str, float]]:
    """Every (policy, kind, rate) cell, baseline first, in stable order."""
    cells: List[Tuple[str, str, float]] = []
    for policy in config.policies:
        cells.append((policy, "none", 0.0))
        for kind in config.kinds:
            for rate in config.fault_rates:
                if rate > 0.0:
                    cells.append((policy, kind, rate))
    return cells


def run_fault_campaign(
    config: FaultCampaignConfig,
    executor: Optional[Executor] = None,
    checkpoint: Optional[CheckpointManager] = None,
) -> ResilienceReport:
    """Run the whole sweep and assemble the resilience report.

    Always goes through :meth:`Executor.map_robust`, so a hanging or
    crashing cell becomes a FAILED row instead of killing the campaign.

    With a ``checkpoint``, every completed cell is journaled as it
    finishes; an interrupted campaign (drain or crash) resumes from the
    journal and its report is byte-identical to an uninterrupted run.
    ``campaign.state.json`` records status ``interrupted``/``complete``
    plus any per-cell failures with full tracebacks.
    """
    if checkpoint is not None:
        if executor is None:
            executor = Executor(max_workers=1, checkpoint=checkpoint)
        elif executor.checkpoint is None:
            executor.checkpoint = checkpoint
    if executor is None:
        executor = Executor(max_workers=1)
    cells = campaign_cells(config)
    units: List[WorkUnit] = [
        (_cell_scenario(config, policy, kind, rate), 0)
        for policy, kind, rate in cells
    ]
    try:
        outcomes = executor.map_robust(units)
    except CampaignInterrupted as exc:
        if checkpoint is not None:
            checkpoint.write_state(
                "interrupted", pending=exc.pending,
                failures=executor.failure_records,
            )
        raise

    rows: List[ResilienceRow] = []
    for (policy, kind, rate), outcome in zip(cells, outcomes):
        row = ResilienceRow(policy=policy, kind=kind, rate=rate)
        if isinstance(outcome, ScenarioFailure):
            row.failure = str(outcome)
        else:
            result: ScenarioResult = outcome
            stats = result.net_stats
            row.md_duty = round(result.md_duty, 4)
            row.mean_duty = round(
                sum(result.duty_cycles) / len(result.duty_cycles), 4
            )
            row.avg_latency = round(stats.avg_packet_latency, 4)
            row.p95_latency = round(stats.p95_packet_latency, 4)
            row.degrade_events = stats.sensor_degrade_events
            # One faulted port with num_vnets=1: the engine watching it
            # contributes (almost) all degraded cycles, so normalizing
            # by the measured window gives that port's degraded share.
            row.degraded_pct = round(
                100.0 * stats.sensor_degraded_cycles / max(1, stats.cycles), 2
            )
            row.violations = result.violations
            row.fault_counters = result.fault_counters
        rows.append(row)
    if checkpoint is not None:
        checkpoint.write_state("complete", failures=executor.failure_records)
    return ResilienceReport(
        config=config, rows=rows, executor_summary=executor.summary()
    )
