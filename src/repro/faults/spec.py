"""Declarative fault descriptions for the sensor-wise control plane.

A :class:`FaultSpec` names *where* a fault lives (router + input port,
optionally a VC), *what* breaks (one of :data:`FAULT_KINDS`), *when*
(onset cycle + optional duration) and *how hard* (a per-event rate or a
fixed parameter).  Specs are frozen, hashable and JSON-serializable, so
they ride inside :class:`~repro.experiments.config.ScenarioConfig` and
participate in result-cache keys.

Fault kinds
-----------
``stuck-sensor``
    The sensor bank keeps measuring (heartbeats continue) but reports a
    wrong verdict: either a fixed most-degraded VC (``stuck_vc``) or one
    device's reading pinned to ``stuck_reading`` volts (``vc`` selects
    the device).  Undetectable by the upstream watchdog — the point is
    to measure how gracefully the policy tolerates being lied to.
``sensor-dropout``
    The bank stops measuring; its verdict goes stale and the Down_Up
    heartbeat disappears, which the upstream staleness watchdog detects.
``down-up-drop`` / ``down-up-delay`` / ``down-up-corrupt``
    The Down_Up link drops reports (per-report probability ``rate``),
    delays them by ``delay`` extra cycles, or injects spurious in-range
    reports (per-cycle probability ``rate``) — wire noise that flaps
    faster than any real sensor can and trips the plausibility watchdog.
``up-down-drop``
    The Up_Down link drops gate/wake commands (probability ``rate``;
    ``command`` restricts to ``"gate"`` or ``"wake"``).  Lost wakes are
    survivable only via the emergency wake-on-arrival relaxation, which
    the injector enables on the targeted port (see docs/RESILIENCE.md).
``stuck-gated``
    The sleep-transistor driver misbehaves on wake: each wake command is
    lost with probability ``rate`` (buffer stays gated until a flit
    arrival forces the emergency wake) or, when ``extra_wake_cycles`` is
    set, completes that many cycles late.

All randomness derives from :func:`derive_seed` — a content hash of the
spec plus a master seed — so campaigns are reproducible cross-process
(``hash()`` is salted per interpreter and never used).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Optional, Tuple

#: Every supported fault kind, in documentation order.
FAULT_KINDS: Tuple[str, ...] = (
    "stuck-sensor",
    "sensor-dropout",
    "down-up-drop",
    "down-up-delay",
    "down-up-corrupt",
    "up-down-drop",
    "stuck-gated",
)

#: Kinds that attack the Down_Up (sensor report) channel.
DOWN_UP_KINDS = ("down-up-drop", "down-up-delay", "down-up-corrupt")


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One injected fault: site, kind, activity window and parameters.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    router, port:
        Site: the *downstream* input port the fault attaches to (the
        sensor bank, its Down_Up sender, its Up_Down receiver and its
        buffers all live there).  ``port`` is a compass name or
        ``"local"``.
    onset, duration:
        Activity window in absolute cycles (warm-up included):
        ``[onset, onset + duration)``; ``None`` duration never ends.
    rate:
        Per-event probability in ``[0, 1]`` for the stochastic kinds
        (drop/corrupt/stuck-gated); ignored by the deterministic ones.
    vc:
        Local VC index the fault targets (``stuck-sensor`` with
        ``stuck_reading``, ``stuck-gated``); ``None`` targets every VC.
    stuck_vc:
        ``stuck-sensor``: the (vnet-local) VC id reported regardless of
        the real readings.
    stuck_reading:
        ``stuck-sensor``: |Vth| in volts pinned onto device ``vc``.
    delay:
        ``down-up-delay``: extra cycles added to each report.
    extra_wake_cycles:
        ``stuck-gated``: late-wake penalty; ``None`` means affected
        wakes are lost outright.
    command:
        ``up-down-drop``: restrict drops to ``"gate"`` or ``"wake"``
        commands (``None`` drops both).
    seed:
        Per-spec salt mixed into :func:`derive_seed`.
    """

    kind: str
    router: int = 0
    port: str = "east"
    onset: int = 0
    duration: Optional[int] = None
    rate: float = 1.0
    vc: Optional[int] = None
    stuck_vc: Optional[int] = None
    stuck_reading: Optional[float] = None
    delay: int = 0
    extra_wake_cycles: Optional[int] = None
    command: Optional[str] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            known = ", ".join(FAULT_KINDS)
            raise ValueError(f"unknown fault kind {self.kind!r}; known kinds: {known}")
        if self.router < 0:
            raise ValueError(f"router must be >= 0, got {self.router}")
        if self.onset < 0:
            raise ValueError(f"onset must be >= 0, got {self.onset}")
        if self.duration is not None and self.duration < 1:
            raise ValueError(f"duration must be >= 1 or None, got {self.duration}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")
        if self.extra_wake_cycles is not None and self.extra_wake_cycles < 1:
            raise ValueError(
                f"extra_wake_cycles must be >= 1 or None, got {self.extra_wake_cycles}"
            )
        if self.command is not None and self.command not in ("gate", "wake"):
            raise ValueError(f"command must be 'gate', 'wake' or None, got {self.command!r}")
        if self.kind == "stuck-sensor" and self.stuck_vc is None and self.stuck_reading is None:
            raise ValueError("stuck-sensor needs stuck_vc or stuck_reading")
        if self.kind == "down-up-delay" and self.delay == 0:
            raise ValueError("down-up-delay needs delay >= 1")

    def active(self, cycle: int) -> bool:
        """Whether the fault's activity window covers ``cycle``."""
        if cycle < self.onset:
            return False
        return self.duration is None or cycle < self.onset + self.duration

    def site(self) -> Tuple[int, str]:
        """The targeted (router, input-port-name) pair."""
        return (self.router, self.port)


def derive_seed(spec: FaultSpec, master_seed: int, salt: str = "") -> int:
    """Deterministic cross-process RNG seed for one fault instance.

    Content-hashes the spec, the campaign master seed and an optional
    salt (distinguishing multiple RNG consumers of one spec).  Python's
    builtin ``hash`` is process-salted and therefore never used here.
    """
    payload = json.dumps(
        {"spec": dataclasses.asdict(spec), "master": master_seed, "salt": salt},
        sort_keys=True,
        separators=(",", ":"),
    )
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")
