"""Parallel scenario execution: executors, result cache, progress.

Every paper artifact is a pile of independent ``run_scenario`` calls —
the comparison protocol (identical traffic/PV per policy) is enforced
purely by seed derivation (:func:`repro.nbti.process_variation.scenario_seed`),
never by shared state, which makes the sweep embarrassingly parallel.
This module exploits that:

* :class:`Executor` maps ``(ScenarioConfig, iteration)`` work units to
  :class:`~repro.experiments.runner.ScenarioResult` objects either
  serially or on a ``concurrent.futures`` process pool, with results
  bit-identical to a serial run (determinism is a property of the
  work units, not of scheduling; verified by ``tests/test_parallel.py``).
* :class:`ResultCache` is an on-disk cache keyed by a stable hash of
  the scenario parameters, the iteration and a schema/code version, so
  repeated campaigns and benchmarks skip already-computed scenarios.
* :class:`ExecutorStats` accumulates per-scenario timing (scenarios
  completed, wall seconds, serial-time estimate and the implied
  speedup) so long campaign runs are observable.

Pool failures (spawn errors, broken pools, unpicklable payloads) fall
back to in-process serial execution instead of aborting the campaign.

For hostile workloads (fault campaigns can hang or crash a scenario),
:meth:`Executor.map_robust` adds per-unit timeouts, bounded retries with
exponential backoff and structured :class:`ScenarioFailure` records: a
broken scenario costs one slot in the result list, never the campaign.
It schedules one killable ``multiprocessing.Process`` per attempt
(``ProcessPoolExecutor`` cannot terminate an individual hung worker).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import pickle
import queue as queue_module
import random
import signal
import tempfile
import threading
import time
import traceback as traceback_module
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from multiprocessing.connection import wait as connection_wait
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.version import __version__
from repro.telemetry.log import current_log_level, setup_worker_logging
from repro.telemetry.metrics import MetricsRegistry
from repro.experiments.checkpoint import CampaignInterrupted, CheckpointManager
from repro.experiments.config import ScenarioConfig
from repro.experiments.governor import (
    BUDGET_KINDS,
    BudgetExceeded,
    GovernorSpec,
    ResourceBudget,
    ScenarioGovernor,
    classify_failure_kind,
)
from repro.experiments.runner import ScenarioResult, run_scenario

#: One unit of simulation work: a fully-specified scenario + traffic
#: iteration.  Everything the result depends on is in these two values.
WorkUnit = Tuple[ScenarioConfig, int]

#: Bump when a change to the simulator alters results for an unchanged
#: ScenarioConfig (invalidates every cached result).
#: v2: ScenarioConfig gained fault-injection fields (faults,
#: validate_every) and the Down_Up heartbeat changed engine state.
#: v3: ScenarioConfig gained the telemetry field, ScenarioResult gained
#: a telemetry summary, and SimStats percentiles moved to QuantileSketch.
#: v4: most-degraded tie-break unified to the lowest VC index and the
#: runner routed through Network.run (interval NBTI accounting +
#: quiescence fast-forward); results for tied-Vth scenarios changed.
CACHE_SCHEMA_VERSION = 4

#: Pool-infrastructure failures that trigger the serial fallback.  An
#: exception raised by the scenario itself (bad config, simulator bug)
#: is *not* in this set and propagates to the caller unchanged.
_POOL_FAILURES = (OSError, BrokenProcessPool, pickle.PicklingError, ImportError)


def _execute_unit(unit: WorkUnit) -> ScenarioResult:
    """Top-level worker entry point (must be picklable by name)."""
    scenario, iteration = unit
    return run_scenario(scenario, iteration)


class RetryBackoff:
    """Exponential backoff with deterministic seeded jitter.

    ``delay(k)`` for retry ``k`` (1-based) is
    ``base * 2**(k-1) * (1 + jitter * u)`` with ``u`` drawn from a
    private ``random.Random(seed)`` stream — so retries desynchronize
    (no thundering herd against a recovering worker pool) while the
    whole delay sequence stays reproducible under a fixed seed.
    ``jitter=0`` recovers the pure exponential schedule.
    """

    def __init__(
        self, base: float, jitter: float = 0.5, seed: Optional[int] = None
    ) -> None:
        if base < 0:
            raise ValueError(f"backoff base must be >= 0, got {base}")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self.base = base
        self.jitter = jitter
        self._rng = random.Random(seed)

    def delay(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based), in seconds."""
        value = self.base * (2 ** (max(attempt, 1) - 1))
        if self.jitter > 0 and value > 0:
            value *= 1.0 + self.jitter * self._rng.random()
        return value


def _ignore_sigint() -> None:
    """Workers leave SIGINT to the parent: a Ctrl-C hits the whole
    process group, and graceful drain needs in-flight units to finish
    rather than die mid-scenario."""
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):
        pass


def _pool_worker_init(log_level: Optional[int]) -> None:
    """Pool-worker initializer: mirror the parent's CLI verbosity.

    Module-level so the spawn start method can pickle it by name.
    """
    _ignore_sigint()
    setup_worker_logging(log_level)


def _robust_child(
    worker: Callable,
    unit: WorkUnit,
    conn,
    log_level: Optional[int] = None,
    budget: Optional[ResourceBudget] = None,
) -> None:
    """Entry point of one killable per-attempt worker process."""
    _ignore_sigint()
    setup_worker_logging(log_level)
    try:
        if budget is not None:
            # Kernel-enforced CPU/address-space fences: a runaway
            # scenario dies by SIGXCPU/MemoryError instead of starving
            # its siblings.  The parent's deadline covers wall time.
            budget.install()
        result = worker(unit)
        conn.send(("ok", result))
    except BaseException as exc:  # noqa: BLE001 - reported, not swallowed
        try:
            conn.send(
                ("error", type(exc).__name__, str(exc), traceback_module.format_exc())
            )
        except BaseException:
            pass
    finally:
        conn.close()


@dataclasses.dataclass
class ScenarioFailure:
    """One work unit that exhausted its attempts (crash or timeout).

    Takes the failed unit's slot in :meth:`Executor.map_robust` output,
    so downstream consumers see exactly which scenario broke and why
    without the campaign aborting.
    """

    scenario: ScenarioConfig
    iteration: int
    error_type: str
    message: str
    attempts: int
    timed_out: bool
    wall_seconds: float
    #: Full formatted traceback from the worker (``None`` for timeouts
    #: and worker deaths, where no Python frame survives).
    traceback: Optional[str] = None
    #: Typed failure kind: ``timeout``/``cpu``/``oom``/``crash``
    #: (see :func:`repro.experiments.governor.classify_failure_kind`).
    #: Derived from ``error_type``/``timed_out`` when not given.
    kind: str = "crash"
    #: Whether the governor quarantined this unit (budget busted on
    #: enough distinct attempts that retrying stopped).
    quarantined: bool = False
    #: Governor cost report (predicted vs budget vs actual) for budget
    #: breaches; ``None`` for ungoverned or plain-crash failures.
    budget: Optional[Dict[str, object]] = None

    def __post_init__(self) -> None:
        if self.kind == "crash":
            self.kind = classify_failure_kind(self.error_type, timed_out=self.timed_out)

    def __str__(self) -> str:
        kind = self.error_type if self.kind == "crash" else self.kind
        line = (
            f"{self.scenario.label} policy={self.scenario.policy} "
            f"iter={self.iteration}: {kind} after {self.attempts} attempt(s): "
            f"{self.message}"
        )
        if self.quarantined:
            line += " [quarantined]"
        return line


def cache_key(scenario: ScenarioConfig, iteration: int) -> str:
    """Stable content hash of everything a scenario result depends on.

    Covers every ``ScenarioConfig`` field, the traffic iteration, the
    cache schema version and the package version — so a cache survives
    process restarts but never serves results across code changes that
    declare themselves (schema bump / release).
    """
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "version": __version__,
        "iteration": iteration,
        "scenario": dataclasses.asdict(scenario),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """On-disk :class:`ScenarioResult` cache (one pickle per work unit).

    Writes are atomic (temp file + ``os.replace``) so a killed run never
    leaves a truncated entry; unreadable entries are treated as misses
    *and counted* (``corrupt_entries``) so cache rot stays visible — a
    plain miss (no file) is not corruption and is not counted.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise NotADirectoryError(
                f"cache path exists and is not a directory: {self.root}"
            )
        self.root.mkdir(parents=True, exist_ok=True)
        #: Entries that existed on disk but could not be loaded (or held
        #: the wrong type): truncated pickles, permission errors, stale
        #: class layouts.  Served as misses, surfaced by the Executor.
        self.corrupt_entries = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def get(self, scenario: ScenarioConfig, iteration: int) -> Optional[ScenarioResult]:
        """Return the cached result for a unit, or ``None`` on a miss."""
        path = self._path(cache_key(scenario, iteration))
        try:
            with open(path, "rb") as fh:
                result = pickle.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ImportError):
            self.corrupt_entries += 1
            return None
        if not isinstance(result, ScenarioResult):
            self.corrupt_entries += 1
            return None
        return result

    def put(self, scenario: ScenarioConfig, iteration: int, result: ScenarioResult) -> None:
        """Store one computed result (atomic + fsync, last-writer-wins)."""
        path = self._path(cache_key(scenario, iteration))
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def verify(self) -> "CacheVerifyReport":
        """Scan every entry, loading each one, and report the rot.

        Covers what :meth:`get` would hit lazily — truncated pickles
        (partial writes that predate fsync), wrong payload types,
        unreadable files — plus leftover ``*.tmp`` files from writers
        that died before their rename.
        """
        total = ok = 0
        corrupt: List[str] = []
        for path in sorted(self.root.glob("*.pkl")):
            total += 1
            try:
                with open(path, "rb") as fh:
                    entry = pickle.load(fh)
            except Exception:  # noqa: BLE001 - arbitrary bytes fail arbitrarily
                corrupt.append(path.name)
                continue
            if isinstance(entry, ScenarioResult):
                ok += 1
            else:
                corrupt.append(path.name)
        orphans = sorted(path.name for path in self.root.glob("*.tmp"))
        return CacheVerifyReport(
            root=self.root, total=total, ok=ok, corrupt=corrupt, orphan_tmp=orphans
        )

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.pkl"))


@dataclasses.dataclass
class CacheVerifyReport:
    """Outcome of :meth:`ResultCache.verify` (the ``cache verify`` CLI)."""

    root: Path
    total: int
    ok: int
    corrupt: List[str]
    orphan_tmp: List[str]

    @property
    def clean(self) -> bool:
        return not self.corrupt and not self.orphan_tmp

    def summary(self) -> str:
        line = f"{self.root}: {self.ok}/{self.total} entries loadable"
        if self.corrupt:
            line += f", {len(self.corrupt)} corrupt"
        if self.orphan_tmp:
            line += f", {len(self.orphan_tmp)} orphaned tmp file(s)"
        return line


@dataclasses.dataclass
class ExecutorStats:
    """Accumulated execution accounting across ``Executor.map`` calls."""

    units_total: int = 0
    units_completed: int = 0
    cache_hits: int = 0
    fallbacks: int = 0
    wall_seconds: float = 0.0
    #: Sum of per-unit build+sim time — what a serial run would cost.
    serial_seconds: float = 0.0
    #: map_robust accounting: units that exhausted their attempts,
    #: individual retry launches, per-attempt timeouts fired.
    failures: int = 0
    retries: int = 0
    timeouts: int = 0
    #: Corrupt cache entries served as misses (mirrors the cache's own
    #: counter so one summary line covers everything).
    cache_corrupt: int = 0
    #: Units served from the write-ahead scenario journal (resume hits).
    journal_hits: int = 0

    @property
    def speedup_estimate(self) -> float:
        """Serial-time estimate divided by actual wall time."""
        if self.wall_seconds <= 0.0:
            return 1.0
        return self.serial_seconds / self.wall_seconds

    def summary(self) -> str:
        line = (
            f"{self.units_completed}/{self.units_total} scenarios "
            f"({self.cache_hits} cached) in {self.wall_seconds:.1f}s wall; "
            f"serial estimate {self.serial_seconds:.1f}s "
            f"(~{self.speedup_estimate:.1f}x)"
        )
        if self.journal_hits:
            line += f"; {self.journal_hits} resumed from journal"
        if self.failures or self.timeouts or self.retries:
            line += (
                f"; {self.failures} failed"
                f" ({self.timeouts} timeouts, {self.retries} retries)"
            )
        if self.cache_corrupt:
            line += f"; {self.cache_corrupt} corrupt cache entries"
        return line


class Executor:
    """Maps work units to scenario results, serially or on a process pool.

    Parameters
    ----------
    max_workers:
        Worker processes.  ``None``/``0`` auto-detects (``os.cpu_count``);
        ``1`` selects the in-process serial backend.
    cache:
        Optional :class:`ResultCache` (or a path, which constructs one).
        Hits skip simulation entirely; fresh results are stored back.
    progress:
        Optional callable receiving one human-readable line per
        completed scenario (``[3/12] 4core-inj0.10 policy=... 0.42s``).
    timeout:
        ``map_robust`` only: per-attempt wall-clock limit in seconds.
        A hung attempt is terminated (its process killed) and counted;
        ``None`` disables the limit.
    retries:
        ``map_robust`` only: extra attempts after a crash or timeout
        (total attempts = ``retries + 1``).
    retry_backoff:
        ``map_robust`` only: base delay before retry ``k`` is
        ``retry_backoff * 2**(k-1)`` seconds (exponential backoff),
        stretched by up to ``retry_jitter`` (see :class:`RetryBackoff`).
    retry_jitter:
        Jitter fraction applied to every retry delay (``0`` disables;
        default ``0.5`` — delays spread over [d, 1.5d]) so simultaneous
        retries don't thundering-herd a recovering worker pool.
    retry_seed:
        Seed of the jitter stream.  ``None`` (default) randomizes per
        executor; a fixed seed makes the delay sequence reproducible.
    worker:
        ``map_robust`` only: the unit-executing callable (picklable by
        name); tests substitute hanging/crashing workers.
    profile:
        Collect per-scenario timing distributions (build / sim / wall
        seconds) into :attr:`metrics`; the summary line then reports
        sim-time percentiles across the campaign.
    log_level:
        Logging level to install in worker processes (defaults to the
        effective level of the ``repro`` logger at construction, so
        ``-v``/``-q`` verbosity propagates through pools).
    checkpoint:
        Optional :class:`~repro.experiments.checkpoint.CheckpointManager`.
        Every completed unit is journaled (write-ahead, fsync'd) the
        moment it finishes, and units already in the journal are served
        from it without re-running — the resume path.
    distributed:
        Optional
        :class:`~repro.experiments.distributed.protocol.DistributedSpec`.
        When set, pending units are served to ``repro-noc worker``
        processes over HTTP leases by an embedded coordinator instead
        of running locally (see :mod:`repro.experiments.distributed`);
        results are committed idempotently through ``checkpoint`` the
        moment they arrive, so worker crashes, partitions and
        coordinator kills compose with ``--resume``.  Call
        :meth:`close` when done (stops the coordinator and any local
        workers it spawned).
    governor:
        Optional :class:`~repro.experiments.governor.ScenarioGovernor`
        (or a :class:`~repro.experiments.governor.GovernorSpec`, which
        constructs one).  Every robust attempt then runs under a
        per-scenario :class:`~repro.experiments.governor.ResourceBudget`
        (wall deadline in the parent, ``RLIMIT_CPU``/``RLIMIT_AS`` in
        the child); budget breaches become typed failures and repeat
        offenders are quarantined instead of retried.  :meth:`map`
        routes through the robust backend and raises
        :class:`~repro.experiments.governor.BudgetExceeded` *after* all
        other units completed (and were journaled), so ``--resume``
        re-runs only the offenders.

    Results are returned in work-unit order regardless of completion
    order, and are bit-identical between backends: a unit's outcome is a
    pure function of ``(ScenarioConfig, iteration)``.

    Graceful shutdown: :meth:`request_drain` (typically wired to
    SIGINT/SIGTERM by
    :func:`~repro.experiments.checkpoint.graceful_shutdown`) stops the
    dispatch of *new* units; in-flight ones finish and are journaled,
    then the map call raises
    :class:`~repro.experiments.checkpoint.CampaignInterrupted` carrying
    the pending count.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache: Optional[Union[ResultCache, str, Path]] = None,
        progress: Optional[Callable[[str], None]] = None,
        timeout: Optional[float] = None,
        retries: int = 0,
        retry_backoff: float = 0.25,
        worker: Callable[[WorkUnit], ScenarioResult] = _execute_unit,
        profile: bool = False,
        log_level: Optional[int] = None,
        checkpoint: Optional[CheckpointManager] = None,
        retry_jitter: float = 0.5,
        retry_seed: Optional[int] = None,
        distributed=None,
        governor: Optional[Union[ScenarioGovernor, GovernorSpec]] = None,
    ) -> None:
        if max_workers is None or max_workers == 0:
            max_workers = os.cpu_count() or 1
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1 (or 0/None for auto), got {max_workers}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive or None, got {timeout}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if retry_backoff < 0:
            raise ValueError(f"retry_backoff must be >= 0, got {retry_backoff}")
        self.max_workers = max_workers
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.progress = progress
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.worker = worker
        self.stats = ExecutorStats()
        #: Campaign-level timing distributions; ``None`` unless profiling.
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if profile else None
        )
        self.log_level = log_level if log_level is not None else current_log_level()
        self.checkpoint = checkpoint
        if governor is not None and not isinstance(governor, ScenarioGovernor):
            governor = ScenarioGovernor(governor)
        self.governor = governor
        self._backoff = RetryBackoff(retry_backoff, retry_jitter, retry_seed)
        self.distributed = distributed
        self._server = None
        self._distributed_summary: Optional[str] = None
        self._commit_lock = threading.Lock()
        #: Every ScenarioFailure produced by map_robust, campaign-wide
        #: (what campaign.state.json surfaces as the failed-unit list).
        self.failure_records: List[ScenarioFailure] = []
        self._drain = threading.Event()
        self._warned_corrupt = False
        if checkpoint is not None and self.metrics is not None:
            self.metrics.inc("checkpoint.journal_replayed", checkpoint.journal.replayed)
            self.metrics.inc("checkpoint.journal_torn", checkpoint.journal.torn)

    def request_drain(self) -> None:
        """Stop dispatching new units; in-flight ones finish and are
        journaled, then the running map raises ``CampaignInterrupted``."""
        self._drain.set()

    @property
    def draining(self) -> bool:
        return self._drain.is_set()

    # -- public API ----------------------------------------------------
    def map(self, units: Sequence[WorkUnit]) -> List[ScenarioResult]:
        """Execute every unit and return results in input order.

        With a :attr:`governor`, units run through the robust backend
        (budgets need killable per-attempt processes); if any unit
        busts its budget the call raises
        :class:`~repro.experiments.governor.BudgetExceeded` *after*
        every other unit completed and was journaled.
        """
        if self.governor is not None:
            outcome = self.map_robust(units)
            failures = [r for r in outcome if isinstance(r, ScenarioFailure)]
            if failures:
                raise BudgetExceeded(failures)
            return outcome  # type: ignore[return-value]  # no failures
        units = list(units)
        started = time.perf_counter()
        self.stats.units_total += len(units)
        results: List[Optional[ScenarioResult]] = [None] * len(units)

        pending: List[int] = []
        for index in range(len(units)):
            known = self._lookup(units[index])
            if known is not None:
                results[index] = known
                self._report(index, units[index], known, cached=True)
            else:
                pending.append(index)
        self._sync_cache_corruption()

        if pending:
            if self.distributed is not None:
                self._map_distributed(units, pending, results, robust=False)
            elif self.max_workers > 1 and len(pending) > 1:
                self._map_pool(units, pending, results)
            else:
                self._map_serial(units, pending, results)

        self.stats.units_completed += len(units)
        self.stats.wall_seconds += time.perf_counter() - started
        return results  # type: ignore[return-value]  # every slot is filled

    def map_robust(
        self, units: Sequence[WorkUnit]
    ) -> List[Union[ScenarioResult, ScenarioFailure]]:
        """Execute every unit, surviving crashes and hangs.

        Like :meth:`map`, but each unit runs in its own killable
        process with the executor's ``timeout``/``retries`` budget; a
        unit that exhausts its attempts yields a :class:`ScenarioFailure`
        in its slot instead of aborting the campaign.  Successful
        results are bit-identical to :meth:`map` (same pure worker).
        """
        units = list(units)
        started = time.perf_counter()
        self.stats.units_total += len(units)
        results: List[Optional[Union[ScenarioResult, ScenarioFailure]]] = [None] * len(units)

        pending: List[int] = []
        for index in range(len(units)):
            known = self._lookup(units[index])
            if known is not None:
                results[index] = known
                self._report(index, units[index], known, cached=True)
            else:
                pending.append(index)
        self._sync_cache_corruption()

        if pending:
            if self.distributed is not None:
                self._map_distributed(units, pending, results, robust=True)
                self.stats.units_completed += len(units)
                self.stats.wall_seconds += time.perf_counter() - started
                return results  # type: ignore[return-value]
            try:
                self._map_robust_processes(units, pending, results)
            except _POOL_FAILURES:
                # No subprocesses available at all (sandbox): degrade to
                # in-process execution — crashes still become failure
                # records, but hangs cannot be interrupted.
                self.stats.fallbacks += 1
                self._report_line(
                    "process spawning unavailable; running robust map in-process "
                    "(timeouts not enforceable)"
                )
                self._map_robust_serial(units, pending, results)

        self.stats.units_completed += len(units)
        self.stats.wall_seconds += time.perf_counter() - started
        return results  # type: ignore[return-value]  # every slot is filled

    def summary(self) -> str:
        """One-line accounting over everything this executor ran."""
        line = self.stats.summary()
        distributed = (
            self._server.summary() if self._server is not None
            else self._distributed_summary
        )
        if distributed is not None:
            line += f"; {distributed}"
        if self.governor is not None:
            governor = self.governor.summary()
            if governor is not None:
                line += f"; {governor}"
        if self.metrics is not None:
            sim = self.metrics.histograms.get("scenario.sim_seconds")
            if sim is not None and sim.count:
                line += (
                    f"; sim p50/p95/p99 = "
                    f"{sim.p50:.2f}/{sim.p95:.2f}/{sim.p99:.2f}s"
                )
        return line

    # -- lookups -------------------------------------------------------
    def _lookup(self, unit: WorkUnit) -> Optional[ScenarioResult]:
        """Serve a unit from the journal (resume) or the result cache."""
        scenario, iteration = unit
        if self.checkpoint is not None:
            hit = self.checkpoint.lookup(cache_key(scenario, iteration))
            if hit is not None:
                self.stats.journal_hits += 1
                return hit
        if self.cache is not None:
            hit = self.cache.get(scenario, iteration)
            if hit is not None:
                self.stats.cache_hits += 1
                return hit
        return None

    def _check_drain(self, pending: Sequence[int], results: Sequence[object]) -> None:
        """Raise ``CampaignInterrupted`` when draining with work left."""
        if not self._drain.is_set():
            return
        remaining = sum(1 for index in pending if results[index] is None)
        if remaining:
            raise CampaignInterrupted(remaining)

    # -- backends ------------------------------------------------------
    def _map_serial(
        self,
        units: Sequence[WorkUnit],
        pending: Sequence[int],
        results: List[Optional[ScenarioResult]],
    ) -> None:
        for index in pending:
            if results[index] is not None:
                continue
            self._check_drain(pending, results)
            result = _execute_unit(units[index])
            self._finish(index, units[index], result, results)

    def _map_pool(
        self,
        units: Sequence[WorkUnit],
        pending: Sequence[int],
        results: List[Optional[ScenarioResult]],
    ) -> None:
        try:
            # Unpicklable payloads (e.g. ad-hoc ScenarioConfig subclasses)
            # would otherwise poison the pool's feeder thread.
            pickle.dumps(tuple(units[i] for i in pending))
        except (pickle.PicklingError, AttributeError, TypeError):
            self.stats.fallbacks += 1
            self._report_line("work units not picklable; falling back to serial execution")
            self._map_serial(units, pending, results)
            return
        try:
            workers = min(self.max_workers, len(pending))
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_pool_worker_init,
                initargs=(self.log_level,),
            ) as pool:
                # Sliding-window dispatch: at most ``workers`` units are
                # outstanding, so a drain request only has to wait for
                # genuinely in-flight scenarios, not a deep submit queue.
                todo = [i for i in pending if results[i] is None]
                cursor = 0
                futures: dict = {}
                while futures or cursor < len(todo):
                    while (
                        cursor < len(todo)
                        and len(futures) < workers
                        and not self._drain.is_set()
                    ):
                        index = todo[cursor]
                        cursor += 1
                        futures[pool.submit(_execute_unit, units[index])] = index
                    if not futures:
                        break  # draining with nothing in flight
                    done, _ = wait(list(futures), return_when=FIRST_COMPLETED)
                    for future in done:
                        index = futures.pop(future)
                        self._finish(index, units[index], future.result(), results)
                self._check_drain(pending, results)
        except _POOL_FAILURES:
            # Pool infrastructure failed (sandboxed spawn, dead worker,
            # unpicklable payload): finish the remaining units in-process.
            self.stats.fallbacks += 1
            self._report_line("process pool unavailable; falling back to serial execution")
            self._map_serial(units, pending, results)

    # -- robust backend ------------------------------------------------
    def _map_robust_serial(
        self,
        units: Sequence[WorkUnit],
        pending: Sequence[int],
        results: List[Optional[Union[ScenarioResult, ScenarioFailure]]],
    ) -> None:
        """In-process robust execution: retries yes, timeouts no."""
        for index in pending:
            if results[index] is not None:
                continue
            self._check_drain(pending, results)
            unit = units[index]
            unit_started = time.perf_counter()
            attempt = 0
            while True:
                attempt += 1
                try:
                    result = self.worker(unit)
                except Exception as exc:  # noqa: BLE001 - becomes a record
                    kind = classify_failure_kind(type(exc).__name__)
                    quarantined, budget_info = self._note_breach(
                        unit, kind, time.perf_counter() - unit_started
                    )
                    if not quarantined and attempt <= self.retries:
                        self.stats.retries += 1
                        backoff = self._backoff.delay(attempt)
                        if backoff > 0:
                            time.sleep(backoff)
                        continue
                    self._fail(
                        index,
                        ScenarioFailure(
                            scenario=unit[0],
                            iteration=unit[1],
                            error_type=type(exc).__name__,
                            message=str(exc),
                            attempts=attempt,
                            timed_out=False,
                            wall_seconds=time.perf_counter() - unit_started,
                            traceback=traceback_module.format_exc(),
                            kind=kind,
                            quarantined=quarantined,
                            budget=budget_info,
                        ),
                        results,
                    )
                    break
                else:
                    self._finish(index, unit, result, results)
                    break

    def _map_robust_processes(
        self,
        units: Sequence[WorkUnit],
        pending: Sequence[int],
        results: List[Optional[Union[ScenarioResult, ScenarioFailure]]],
    ) -> None:
        """One killable process per attempt, at most ``max_workers`` live.

        The scheduler multiplexes three event sources: result pipes
        becoming readable, per-attempt deadlines expiring, and backoff
        delays elapsing for queued retries.
        """
        ctx = multiprocessing.get_context()
        # (unit index, attempt number, earliest monotonic start time)
        queue: List[Tuple[int, int, float]] = [(i, 1, 0.0) for i in pending]
        running: dict = {}  # receiving pipe end -> task record
        unit_started = {i: time.perf_counter() for i in pending}
        # Per-unit resource budget and effective wall limit (the tighter
        # of the budget's wall cap and the executor timeout).  Without a
        # governor these degrade to (None, self.timeout) — the
        # historical behaviour, byte for byte.
        budgets: Dict[int, Optional[ResourceBudget]] = {}
        wall_limits: Dict[int, Optional[float]] = {}
        for i in pending:
            if self.governor is not None:
                budget = self.governor.budget_for(units[i][0])
                budgets[i] = budget
                wall_limits[i] = budget.deadline(self.timeout)
            else:
                budgets[i] = None
                wall_limits[i] = self.timeout

        def launch(index: int, attempt: int) -> None:
            recv_end, send_end = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_robust_child,
                args=(
                    self.worker, units[index], send_end, self.log_level,
                    budgets[index],
                ),
                daemon=True,
            )
            proc.start()
            send_end.close()
            running[recv_end] = {
                "index": index,
                "attempt": attempt,
                "proc": proc,
                "deadline": (
                    None if wall_limits[index] is None
                    else time.monotonic() + wall_limits[index]
                ),
            }

        def retry_or_fail(index: int, attempt: int, error_type: str,
                          message: str, timed_out: bool,
                          traceback: Optional[str] = None,
                          kind: Optional[str] = None) -> None:
            if kind is None:
                kind = classify_failure_kind(error_type, timed_out=timed_out)
            quarantined, budget_info = self._note_breach(
                units[index], kind, time.perf_counter() - unit_started[index]
            )
            # A quarantined unit stops retrying immediately: the budget
            # verdict is final, remaining attempts would just burn the
            # same budget again.
            if not quarantined and attempt <= self.retries:
                self.stats.retries += 1
                backoff = self._backoff.delay(attempt)
                queue.append((index, attempt + 1, time.monotonic() + backoff))
                return
            self._fail(
                index,
                ScenarioFailure(
                    scenario=units[index][0],
                    iteration=units[index][1],
                    error_type=error_type,
                    message=message,
                    attempts=attempt,
                    timed_out=timed_out,
                    wall_seconds=time.perf_counter() - unit_started[index],
                    traceback=traceback,
                    kind=kind,
                    quarantined=quarantined,
                    budget=budget_info,
                ),
                results,
            )

        def reap(conn, task, timed_out: bool) -> None:
            proc = task["proc"]
            message = None
            if timed_out:
                proc.terminate()
            else:
                try:
                    if conn.poll():
                        message = conn.recv()
                except (EOFError, OSError):
                    message = None
            proc.join()
            conn.close()
            index, attempt = task["index"], task["attempt"]
            if timed_out:
                self.stats.timeouts += 1
                retry_or_fail(
                    index, attempt, "Timeout",
                    f"attempt exceeded {wall_limits[index]}s", timed_out=True,
                )
            elif message is not None and message[0] == "ok":
                self._finish(index, units[index], message[1], results)
            elif message is not None and message[0] == "error":
                retry_or_fail(
                    index, attempt, message[1], message[2], timed_out=False,
                    traceback=message[3] if len(message) > 3 else None,
                )
            else:
                # No result made it up the pipe: the kernel killed the
                # worker.  The exit signal tells us why — SIGXCPU is
                # the CPU budget, SIGKILL is the OOM killer's (and the
                # RLIMIT_CPU hard cap's) signature.
                retry_or_fail(
                    index, attempt, "WorkerDied",
                    f"worker exited with code {proc.exitcode}", timed_out=False,
                    kind=classify_failure_kind(
                        "WorkerDied", exitcode=proc.exitcode
                    ),
                )

        try:
            # Draining stops new launches; the loop then only reaps what
            # is already in flight (still bounded by per-attempt
            # deadlines) and leaves the queue for the resume run.
            while running or (queue and not self._drain.is_set()):
                now = time.monotonic()
                # Launch every due queued attempt while slots are free.
                while len(running) < self.max_workers and not self._drain.is_set():
                    due = next(
                        (k for k, item in enumerate(queue) if item[2] <= now), None
                    )
                    if due is None:
                        break
                    index, attempt, _ = queue.pop(due)
                    launch(index, attempt)

                # Sleep until the next event could possibly happen.
                horizons = [
                    t["deadline"] for t in running.values() if t["deadline"] is not None
                ]
                horizons.extend(item[2] for item in queue)
                wait_for = (
                    None if not horizons
                    else max(0.0, min(horizons) - time.monotonic())
                )
                if running:
                    ready = connection_wait(list(running), timeout=wait_for)
                    now = time.monotonic()
                    for conn in ready:
                        reap(conn, running.pop(conn), timed_out=False)
                    for conn in [
                        c for c, t in running.items()
                        if t["deadline"] is not None and now >= t["deadline"]
                    ]:
                        reap(conn, running.pop(conn), timed_out=True)
                elif wait_for:
                    time.sleep(wait_for)
            if self._drain.is_set() and queue:
                raise CampaignInterrupted(len(queue))
        finally:
            for conn, task in running.items():
                task["proc"].terminate()
                task["proc"].join()
                conn.close()

    # -- distributed backend -------------------------------------------
    def _ensure_server(self):
        """Start (once) the embedded coordinator for this executor."""
        if self._server is None:
            # Imported lazily: distributed/ depends on this module.
            from repro.experiments.distributed.coordinator import CoordinatorServer

            self._server = CoordinatorServer(
                self.distributed, commit=self._commit_remote
            )
            self._server.start()
            host, port = self._server.address
            self._report_line(
                f"distributed coordinator serving on {host}:{port} "
                f"({self.distributed.local_workers} local worker(s))"
            )
        return self._server

    def distributed_address(self) -> Tuple[str, int]:
        """``(host, port)`` of the embedded coordinator (starting it)."""
        if self.distributed is None:
            raise RuntimeError("executor has no distributed backend configured")
        return self._ensure_server().address

    def _commit_remote(self, key: str, result: ScenarioResult) -> None:
        """Durably journal a remote completion before it is acked.

        Runs on coordinator handler threads; the lock serializes journal
        appends (the write-ahead property then extends across hosts: a
        worker's completion is acked only once it is fsync'd here).
        """
        with self._commit_lock:
            if self.checkpoint is not None:
                self.checkpoint.record(key, result)
                if self.metrics is not None:
                    self.metrics.inc("checkpoint.journal_appends")

    def _map_distributed(
        self,
        units: Sequence[WorkUnit],
        pending: Sequence[int],
        results: List[Optional[Union[ScenarioResult, ScenarioFailure]]],
        robust: bool,
    ) -> None:
        """Serve pending units to remote workers via the lease coordinator.

        Completions and poison verdicts arrive on the server's event
        queue (producer: HTTP handler threads / expiry scans) and are
        folded into ``results`` here on the calling thread, so journal,
        cache and stats bookkeeping stay single-threaded.  A drain
        request stops new lease grants; in-flight leases either complete
        (and are committed) or expire, bounded by the lease timeout.
        """
        from repro.experiments.distributed.coordinator import POISON_ERROR_TYPE

        server = self._ensure_server()
        key_indices: Dict[str, List[int]] = {}
        batch = []
        submitted = time.perf_counter()
        for index in pending:
            key = cache_key(*units[index])
            slots = key_indices.setdefault(key, [])
            if not slots:
                batch.append((key, units[index]))
            slots.append(index)
        server.submit(batch)
        outstanding = set(key_indices)

        while outstanding:
            if self._drain.is_set():
                server.drain()
            server.expire_leases()
            try:
                kind, key, payload = server.events.get(
                    timeout=self.distributed.poll_interval
                )
            except queue_module.Empty:
                if (
                    self._drain.is_set()
                    and server.table.active_leases() == 0
                    and server.events.empty()
                ):
                    break
                continue
            if key not in outstanding:
                continue  # stale event for an already-settled key
            outstanding.discard(key)
            for index in key_indices[key]:
                if kind == "result":
                    self._finish(index, units[index], payload, results)
                else:
                    error_type = payload.get("error_type") or POISON_ERROR_TYPE
                    failure = ScenarioFailure(
                        scenario=units[index][0],
                        iteration=units[index][1],
                        error_type=error_type,
                        message=payload.get("message", "poisoned scenario"),
                        attempts=int(payload.get("attempts") or 0),
                        timed_out=False,
                        wall_seconds=time.perf_counter() - submitted,
                        traceback=payload.get("traceback"),
                        kind=(
                            payload.get("kind")
                            or classify_failure_kind(error_type)
                        ),
                        quarantined=kind == "poisoned",
                    )
                    if robust:
                        self._fail(index, failure, results)
                    else:
                        raise RuntimeError(
                            f"scenario quarantined by the coordinator: {failure}"
                        )
        if outstanding:
            raise CampaignInterrupted(len(outstanding))

    def close(self) -> None:
        """Stop the embedded coordinator and its local workers (no-op
        for non-distributed executors; safe to call repeatedly)."""
        if self._server is not None:
            self._distributed_summary = self._server.summary()
            self._server.close()
            self._server = None

    def _note_breach(
        self, unit: WorkUnit, kind: str, elapsed: float
    ) -> Tuple[bool, Optional[Dict[str, object]]]:
        """Record one budget breach with the governor (if any).

        Returns ``(quarantined, budget_info)``; ``(False, None)`` when
        ungoverned or when ``kind`` is not a budget kind — so callers
        can consult it unconditionally on every failed attempt.
        """
        if self.governor is None or kind not in BUDGET_KINDS:
            return False, None
        scenario, iteration = unit
        quarantined = self.governor.record_breach(
            cache_key(scenario, iteration), scenario, iteration, kind, elapsed
        )
        if self.metrics is not None:
            self.metrics.inc(f"governor.breach_{kind}")
            if quarantined:
                self.metrics.inc("governor.quarantined")
        return quarantined, self.governor.budget_info(scenario, elapsed)

    def _fail(
        self,
        index: int,
        failure: ScenarioFailure,
        results: List[Optional[Union[ScenarioResult, ScenarioFailure]]],
    ) -> None:
        results[index] = failure
        self.stats.failures += 1
        self.failure_records.append(failure)
        self._report_line(f"[{index + 1}/{self.stats.units_total}] FAILED {failure}")

    def _sync_cache_corruption(self) -> None:
        if self.cache is None or self.cache.corrupt_entries <= self.stats.cache_corrupt:
            return
        self.stats.cache_corrupt = self.cache.corrupt_entries
        if not self._warned_corrupt:
            self._warned_corrupt = True
            self._report_line(
                f"warning: {self.cache.corrupt_entries} corrupt result-cache "
                f"entries under {self.cache.root} were treated as misses"
            )

    # -- bookkeeping ---------------------------------------------------
    def _finish(
        self,
        index: int,
        unit: WorkUnit,
        result: ScenarioResult,
        results: List[Optional[ScenarioResult]],
    ) -> None:
        results[index] = result
        self.stats.serial_seconds += result.wall_seconds
        if self.metrics is not None:
            self.metrics.observe("scenario.build_seconds", result.build_seconds)
            self.metrics.observe("scenario.sim_seconds", result.sim_seconds)
            self.metrics.observe("scenario.wall_seconds", result.wall_seconds)
        if self.cache is not None:
            self.cache.put(unit[0], unit[1], result)
        if self.checkpoint is not None:
            # Write-ahead: the result is durable (fsync'd journal
            # record) before the campaign consumes it.
            self.checkpoint.record(cache_key(unit[0], unit[1]), result)
            if self.metrics is not None:
                self.metrics.inc("checkpoint.journal_appends")
        self._report(index, unit, result, cached=False)

    def _report(self, index: int, unit: WorkUnit, result: ScenarioResult, cached: bool) -> None:
        if self.progress is None:
            return
        scenario, iteration = unit
        timing = "cache" if cached else f"{result.sim_seconds:.2f}s"
        self._report_line(
            f"[{index + 1}/{self.stats.units_total}] {scenario.label} "
            f"policy={scenario.policy} iter={iteration} {timing}"
        )

    def _report_line(self, line: str) -> None:
        if self.progress is not None:
            self.progress(line)


def make_executor(
    jobs: Optional[int] = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    progress: Optional[Callable[[str], None]] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    profile: bool = False,
    checkpoint: Optional[CheckpointManager] = None,
    distributed=None,
    governor: Optional[Union[ScenarioGovernor, GovernorSpec]] = None,
) -> Optional[Executor]:
    """CLI helper: build an :class:`Executor` only when one is wanted.

    ``jobs=1`` with no cache and no robustness/profiling/checkpoint/
    distributed/governor knobs keeps the historical in-function serial
    path (returns ``None``); ``jobs=0`` auto-detects worker count.
    """
    if (
        (jobs == 1 or jobs is None)
        and cache_dir is None
        and timeout is None
        and retries == 0
        and not profile
        and checkpoint is None
        and distributed is None
        and governor is None
    ):
        return None
    return Executor(
        max_workers=jobs, cache=cache_dir, progress=progress,
        timeout=timeout, retries=retries, profile=profile,
        checkpoint=checkpoint, distributed=distributed, governor=governor,
    )


def execute_units(
    units: Sequence[WorkUnit], executor: Optional[Executor] = None
) -> List[ScenarioResult]:
    """Run units through ``executor``, or serially in-process when ``None``."""
    if executor is None:
        return [run_scenario(scenario, iteration) for scenario, iteration in units]
    return executor.map(units)
