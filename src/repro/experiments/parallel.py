"""Parallel scenario execution: executors, result cache, progress.

Every paper artifact is a pile of independent ``run_scenario`` calls —
the comparison protocol (identical traffic/PV per policy) is enforced
purely by seed derivation (:func:`repro.nbti.process_variation.scenario_seed`),
never by shared state, which makes the sweep embarrassingly parallel.
This module exploits that:

* :class:`Executor` maps ``(ScenarioConfig, iteration)`` work units to
  :class:`~repro.experiments.runner.ScenarioResult` objects either
  serially or on a ``concurrent.futures`` process pool, with results
  bit-identical to a serial run (determinism is a property of the
  work units, not of scheduling; verified by ``tests/test_parallel.py``).
* :class:`ResultCache` is an on-disk cache keyed by a stable hash of
  the scenario parameters, the iteration and a schema/code version, so
  repeated campaigns and benchmarks skip already-computed scenarios.
* :class:`ExecutorStats` accumulates per-scenario timing (scenarios
  completed, wall seconds, serial-time estimate and the implied
  speedup) so long campaign runs are observable.

Pool failures (spawn errors, broken pools, unpicklable payloads) fall
back to in-process serial execution instead of aborting the campaign.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.version import __version__
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import ScenarioResult, run_scenario

#: One unit of simulation work: a fully-specified scenario + traffic
#: iteration.  Everything the result depends on is in these two values.
WorkUnit = Tuple[ScenarioConfig, int]

#: Bump when a change to the simulator alters results for an unchanged
#: ScenarioConfig (invalidates every cached result).
CACHE_SCHEMA_VERSION = 1

#: Pool-infrastructure failures that trigger the serial fallback.  An
#: exception raised by the scenario itself (bad config, simulator bug)
#: is *not* in this set and propagates to the caller unchanged.
_POOL_FAILURES = (OSError, BrokenProcessPool, pickle.PicklingError, ImportError)


def _execute_unit(unit: WorkUnit) -> ScenarioResult:
    """Top-level worker entry point (must be picklable by name)."""
    scenario, iteration = unit
    return run_scenario(scenario, iteration)


def cache_key(scenario: ScenarioConfig, iteration: int) -> str:
    """Stable content hash of everything a scenario result depends on.

    Covers every ``ScenarioConfig`` field, the traffic iteration, the
    cache schema version and the package version — so a cache survives
    process restarts but never serves results across code changes that
    declare themselves (schema bump / release).
    """
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "version": __version__,
        "iteration": iteration,
        "scenario": dataclasses.asdict(scenario),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """On-disk :class:`ScenarioResult` cache (one pickle per work unit).

    Writes are atomic (temp file + ``os.replace``) so a killed run never
    leaves a truncated entry; unreadable entries are treated as misses.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise NotADirectoryError(
                f"cache path exists and is not a directory: {self.root}"
            )
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def get(self, scenario: ScenarioConfig, iteration: int) -> Optional[ScenarioResult]:
        """Return the cached result for a unit, or ``None`` on a miss."""
        path = self._path(cache_key(scenario, iteration))
        try:
            with open(path, "rb") as fh:
                result = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ImportError):
            return None
        return result if isinstance(result, ScenarioResult) else None

    def put(self, scenario: ScenarioConfig, iteration: int, result: ScenarioResult) -> None:
        """Store one computed result (atomic, last-writer-wins)."""
        path = self._path(cache_key(scenario, iteration))
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.pkl"))


@dataclasses.dataclass
class ExecutorStats:
    """Accumulated execution accounting across ``Executor.map`` calls."""

    units_total: int = 0
    units_completed: int = 0
    cache_hits: int = 0
    fallbacks: int = 0
    wall_seconds: float = 0.0
    #: Sum of per-unit build+sim time — what a serial run would cost.
    serial_seconds: float = 0.0

    @property
    def speedup_estimate(self) -> float:
        """Serial-time estimate divided by actual wall time."""
        if self.wall_seconds <= 0.0:
            return 1.0
        return self.serial_seconds / self.wall_seconds

    def summary(self) -> str:
        return (
            f"{self.units_completed}/{self.units_total} scenarios "
            f"({self.cache_hits} cached) in {self.wall_seconds:.1f}s wall; "
            f"serial estimate {self.serial_seconds:.1f}s "
            f"(~{self.speedup_estimate:.1f}x)"
        )


class Executor:
    """Maps work units to scenario results, serially or on a process pool.

    Parameters
    ----------
    max_workers:
        Worker processes.  ``None``/``0`` auto-detects (``os.cpu_count``);
        ``1`` selects the in-process serial backend.
    cache:
        Optional :class:`ResultCache` (or a path, which constructs one).
        Hits skip simulation entirely; fresh results are stored back.
    progress:
        Optional callable receiving one human-readable line per
        completed scenario (``[3/12] 4core-inj0.10 policy=... 0.42s``).

    Results are returned in work-unit order regardless of completion
    order, and are bit-identical between backends: a unit's outcome is a
    pure function of ``(ScenarioConfig, iteration)``.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache: Optional[Union[ResultCache, str, Path]] = None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        if max_workers is None or max_workers == 0:
            max_workers = os.cpu_count() or 1
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1 (or 0/None for auto), got {max_workers}")
        self.max_workers = max_workers
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.progress = progress
        self.stats = ExecutorStats()

    # -- public API ----------------------------------------------------
    def map(self, units: Sequence[WorkUnit]) -> List[ScenarioResult]:
        """Execute every unit and return results in input order."""
        units = list(units)
        started = time.perf_counter()
        self.stats.units_total += len(units)
        results: List[Optional[ScenarioResult]] = [None] * len(units)

        pending: List[int] = []
        for index, (scenario, iteration) in enumerate(units):
            cached = self.cache.get(scenario, iteration) if self.cache else None
            if cached is not None:
                results[index] = cached
                self.stats.cache_hits += 1
                self._report(index, units[index], cached, cached=True)
            else:
                pending.append(index)

        if pending:
            if self.max_workers > 1 and len(pending) > 1:
                self._map_pool(units, pending, results)
            else:
                self._map_serial(units, pending, results)

        self.stats.units_completed += len(units)
        self.stats.wall_seconds += time.perf_counter() - started
        return results  # type: ignore[return-value]  # every slot is filled

    def summary(self) -> str:
        """One-line accounting over everything this executor ran."""
        return self.stats.summary()

    # -- backends ------------------------------------------------------
    def _map_serial(
        self,
        units: Sequence[WorkUnit],
        pending: Sequence[int],
        results: List[Optional[ScenarioResult]],
    ) -> None:
        for index in pending:
            if results[index] is not None:
                continue
            result = _execute_unit(units[index])
            self._finish(index, units[index], result, results)

    def _map_pool(
        self,
        units: Sequence[WorkUnit],
        pending: Sequence[int],
        results: List[Optional[ScenarioResult]],
    ) -> None:
        try:
            # Unpicklable payloads (e.g. ad-hoc ScenarioConfig subclasses)
            # would otherwise poison the pool's feeder thread.
            pickle.dumps(tuple(units[i] for i in pending))
        except (pickle.PicklingError, AttributeError, TypeError):
            self.stats.fallbacks += 1
            self._report_line("work units not picklable; falling back to serial execution")
            self._map_serial(units, pending, results)
            return
        try:
            workers = min(self.max_workers, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {pool.submit(_execute_unit, units[i]): i for i in pending}
                not_done = set(futures)
                while not_done:
                    done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                    for future in done:
                        index = futures[future]
                        self._finish(index, units[index], future.result(), results)
        except _POOL_FAILURES:
            # Pool infrastructure failed (sandboxed spawn, dead worker,
            # unpicklable payload): finish the remaining units in-process.
            self.stats.fallbacks += 1
            self._report_line("process pool unavailable; falling back to serial execution")
            self._map_serial(units, pending, results)

    # -- bookkeeping ---------------------------------------------------
    def _finish(
        self,
        index: int,
        unit: WorkUnit,
        result: ScenarioResult,
        results: List[Optional[ScenarioResult]],
    ) -> None:
        results[index] = result
        self.stats.serial_seconds += result.wall_seconds
        if self.cache is not None:
            self.cache.put(unit[0], unit[1], result)
        self._report(index, unit, result, cached=False)

    def _report(self, index: int, unit: WorkUnit, result: ScenarioResult, cached: bool) -> None:
        if self.progress is None:
            return
        scenario, iteration = unit
        timing = "cache" if cached else f"{result.sim_seconds:.2f}s"
        self._report_line(
            f"[{index + 1}/{self.stats.units_total}] {scenario.label} "
            f"policy={scenario.policy} iter={iteration} {timing}"
        )

    def _report_line(self, line: str) -> None:
        if self.progress is not None:
            self.progress(line)


def make_executor(
    jobs: Optional[int] = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Optional[Executor]:
    """CLI helper: build an :class:`Executor` only when one is wanted.

    ``jobs=1`` with no cache keeps the historical in-function serial
    path (returns ``None``); ``jobs=0`` auto-detects worker count.
    """
    if (jobs == 1 or jobs is None) and cache_dir is None:
        return None
    return Executor(max_workers=jobs, cache=cache_dir, progress=progress)


def execute_units(
    units: Sequence[WorkUnit], executor: Optional[Executor] = None
) -> List[ScenarioResult]:
    """Run units through ``executor``, or serially in-process when ``None``."""
    if executor is None:
        return [run_scenario(scenario, iteration) for scenario, iteration in units]
    return executor.map(units)
