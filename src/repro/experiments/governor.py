"""Resource governance: per-scenario budgets, overload protection, quarantine.

A campaign that "serves heavy traffic" needs the same discipline the
paper applies to NBTI stress: *budget* the resource a component may
consume and gate the worst offender before it degrades the rest.  This
module is that discipline for the execution layer:

* :class:`ResourceBudget` — wall/CPU/RSS limits for one scenario
  attempt.  CPU and address-space limits are installed with
  ``resource.setrlimit`` inside the killable worker process (see
  ``_robust_child`` in :mod:`repro.experiments.parallel`) so a runaway
  scenario is killed by the kernel, not trusted to police itself; the
  wall limit is enforced by the parent's per-attempt deadline.
* :func:`estimate_cost` — a deterministic cost model over
  :class:`~repro.experiments.config.ScenarioConfig` (cycles × routers ×
  VCs, scaled by telemetry/fault/validation multipliers) from which
  :class:`ScenarioGovernor` derives *adaptive* default budgets: small
  scenarios fail fast, big meshes get headroom, and the predictions are
  reported next to actuals when a scenario is quarantined so users can
  re-run with an explicit ``--budget-*``.
* :func:`classify_failure_kind` — maps how an attempt died (timeout
  deadline, ``SIGXCPU``, ``SIGKILL``/``MemoryError``, anything else)
  onto the typed failure kinds ``timeout``/``cpu``/``oom``/``crash``
  surfaced end-to-end in failure records, campaign reports and
  ``campaign.state.json``.
* :class:`ScenarioGovernor` — per-executor budget policy plus the local
  quarantine ledger.  Quarantine deliberately *reuses* the distributed
  :class:`~repro.experiments.distributed.lease.LeaseTable` poison
  machinery (each budget-busting attempt is recorded as a distinct
  failed "worker"); after :attr:`GovernorSpec.quarantine_threshold`
  breaches the scenario is poisoned locally exactly as it would be
  fleet-wide.
* :class:`OverloadGuard` / :class:`CircuitBreaker` — coordinator-side
  overload protection: admission verdicts (``ok``/``brownout``/
  ``shed``) from queue depth, in-flight request count and resident-set
  pressure, and a breaker that stops acking completions after K
  consecutive durable-commit failures so a wedged journal drains the
  fleet instead of silently losing acks.

Everything here is opt-in: an executor without a governor behaves
byte-identically to the historical code paths.
"""

from __future__ import annotations

import dataclasses
import math
import signal
import sys
import threading
from typing import Dict, List, Optional

#: Failure kinds that count as *budget breaches* (drive quarantine).
BUDGET_KINDS = ("timeout", "cpu", "oom")

#: All failure kinds a ScenarioFailure may carry.
ALL_KINDS = BUDGET_KINDS + ("crash",)

#: Estimator calibration.  Work units are cycle-lane steps
#: (cycles × routers × VCs); the divisor is a *worst-case* dense-Python
#: throughput so adaptive budgets sit far above healthy runtimes —
#: governance must never fire on a healthy run (the goldens depend on
#: it) while still bounding a scenario that runs 10x past its class.
WORK_PER_CPU_SECOND = 2_000.0
#: Interpreter start-up + imports, charged to every attempt.
BASE_CPU_SECONDS = 5.0
#: Adaptive wall budgets allow this much scheduling/IO slack over CPU.
WALL_SLACK_FACTOR = 3.0
#: Address-space floor: interpreter + numpy arenas + thread stacks map
#: far more *virtual* memory than they ever touch, and RLIMIT_AS bounds
#: address space, not RSS — so the adaptive floor is deliberately huge.
BASE_RSS_BYTES = 4 << 30
PER_LANE_RSS_BYTES = 1 << 20


class BudgetExceeded(RuntimeError):
    """A governed non-robust map finished with budget-failed scenarios.

    Raised *after* every other unit completed (and was journaled), so a
    ``--resume`` re-run serves the completed set byte-identically and
    only the offenders re-run.  ``failures`` carries the
    :class:`~repro.experiments.parallel.ScenarioFailure` records.
    """

    def __init__(self, failures: List[object]) -> None:
        self.failures = list(failures)
        quarantined = sum(
            1 for f in self.failures if getattr(f, "quarantined", False)
        )
        detail = "; ".join(str(f) for f in self.failures[:3])
        if len(self.failures) > 3:
            detail += f"; ... {len(self.failures) - 3} more"
        super().__init__(
            f"{len(self.failures)} scenario(s) exceeded their resource "
            f"budget ({quarantined} quarantined); completed scenarios are "
            f"journaled — re-run with a larger --budget-* to retry: {detail}"
        )


def classify_failure_kind(
    error_type: str,
    timed_out: bool = False,
    exitcode: Optional[int] = None,
) -> str:
    """Typed failure kind for one dead attempt.

    ``timeout``
        the parent's per-attempt deadline fired, or the lease expired
        (a worker that stopped heartbeating is indistinguishable from a
        hang);
    ``cpu``
        the kernel delivered ``SIGXCPU`` — the ``RLIMIT_CPU`` budget;
    ``oom``
        ``SIGKILL`` (the kernel OOM killer leaves exactly this
        signature) or a ``MemoryError`` from the address-space budget;
    ``crash``
        everything else (scenario bug, bad config, corrupt payload).
    """
    if timed_out or error_type in ("Timeout", "LeaseExpired"):
        return "timeout"
    if exitcode is not None and exitcode < 0:
        sig = -exitcode
        if sig == getattr(signal, "SIGXCPU", 24):
            return "cpu"
        if sig == signal.SIGKILL:
            return "oom"
    if error_type == "MemoryError":
        return "oom"
    return "crash"


@dataclasses.dataclass(frozen=True)
class ResourceBudget:
    """Resource limits for one scenario attempt (``None`` = unlimited)."""

    wall_seconds: Optional[float] = None
    cpu_seconds: Optional[float] = None
    rss_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("wall_seconds", "cpu_seconds", "rss_bytes"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive or None, got {value}")

    def deadline(self, executor_timeout: Optional[float]) -> Optional[float]:
        """Effective per-attempt wall limit (tighter of budget/executor)."""
        limits = [t for t in (self.wall_seconds, executor_timeout) if t is not None]
        return min(limits) if limits else None

    def install(self) -> List[str]:
        """Install the CPU/address-space limits in *this* process.

        Called by the killable worker child before ``run_scenario``.
        ``RLIMIT_CPU`` soft limit delivers ``SIGXCPU`` at the budget
        (hard limit one second later is the ``SIGKILL`` backstop);
        the memory budget prefers ``RLIMIT_AS`` and falls back to
        ``RLIMIT_DATA`` where address-space limits are unsupported.
        Best-effort by design: platforms without ``resource`` (or with
        tighter pre-existing limits) simply keep what they have, and
        the parent's wall deadline still bounds the attempt.  Returns
        the names of the limits actually installed.
        """
        try:
            import resource
        except ImportError:  # non-POSIX: wall deadline is the only fence
            return []
        installed: List[str] = []
        if self.cpu_seconds is not None:
            soft = max(1, int(math.ceil(self.cpu_seconds)))
            try:
                resource.setrlimit(resource.RLIMIT_CPU, (soft, soft + 1))
                installed.append("cpu")
            except (ValueError, OSError):
                pass
        if self.rss_bytes is not None:
            limit = int(self.rss_bytes)
            for name in ("RLIMIT_AS", "RLIMIT_DATA"):
                which = getattr(resource, name, None)
                if which is None:
                    continue
                try:
                    resource.setrlimit(which, (limit, limit))
                except (ValueError, OSError):
                    continue
                installed.append(name.lower())
                break
        return installed


@dataclasses.dataclass(frozen=True)
class CostEstimate:
    """Deterministic predicted cost of one scenario."""

    #: Abstract work units: (cycles+warmup) × routers × VCs × multipliers.
    work: float
    cpu_seconds: float
    rss_bytes: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "work": round(self.work, 1),
            "cpu_seconds": round(self.cpu_seconds, 3),
            "rss_bytes": int(self.rss_bytes),
        }


def estimate_cost(scenario) -> CostEstimate:
    """Predict a scenario's cost from its configuration alone.

    A pure function of the :class:`ScenarioConfig` fields — the same
    scenario always gets the same budget, on every host, so budget
    verdicts (and therefore campaign reports) are deterministic.
    """
    cycles = float(scenario.cycles + scenario.warmup)
    lanes = max(1, scenario.num_nodes * scenario.num_vcs * scenario.num_vnets)
    multiplier = 1.0
    if getattr(scenario, "faults", ()):
        multiplier *= 1.6  # fault hooks force dense stepping
    if getattr(scenario, "validate_every", 0):
        multiplier *= 2.0  # invariant sweeps are whole-network scans
    if getattr(scenario, "telemetry", None) is not None:
        multiplier *= 2.0  # tracing doubles per-event work
    if getattr(scenario, "traffic", "") == "benchmark-mix":
        multiplier *= 1.3
    work = cycles * lanes * multiplier
    return CostEstimate(
        work=work,
        cpu_seconds=BASE_CPU_SECONDS + work / WORK_PER_CPU_SECOND,
        rss_bytes=BASE_RSS_BYTES + lanes * PER_LANE_RSS_BYTES,
    )


@dataclasses.dataclass
class GovernorSpec:
    """Budget policy of one :class:`ScenarioGovernor`.

    Explicit caps (``wall_seconds``/``cpu_seconds``/``rss_bytes``)
    apply to every scenario; dimensions left ``None`` fall back to the
    adaptive estimator defaults scaled by ``scale``.  A scenario whose
    budget breaches on ``quarantine_threshold`` distinct attempts is
    quarantined instead of retried forever.
    """

    wall_seconds: Optional[float] = None
    cpu_seconds: Optional[float] = None
    rss_bytes: Optional[int] = None
    adaptive: bool = True
    scale: float = 1.0
    quarantine_threshold: int = 2

    def __post_init__(self) -> None:
        for name in ("wall_seconds", "cpu_seconds", "rss_bytes"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive or None, got {value}")
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.quarantine_threshold < 1:
            raise ValueError(
                f"quarantine_threshold must be >= 1, got {self.quarantine_threshold}"
            )


class ScenarioGovernor:
    """Budget derivation + breach accounting + local quarantine.

    One governor serves one :class:`~repro.experiments.parallel.Executor`
    and is consulted from its scheduling thread only (the lock guards
    the summary/metrics reads from other threads).
    """

    def __init__(self, spec: Optional[GovernorSpec] = None) -> None:
        self.spec = spec if spec is not None else GovernorSpec()
        self._lock = threading.Lock()
        self._table = None  # lazy LeaseTable (import cycle: lease -> parallel)
        self._breaches: Dict[str, int] = {}
        #: key -> quarantine record (predicted vs actual cost, kind...).
        self.quarantine_records: Dict[str, Dict[str, object]] = {}
        self.counters: Dict[str, int] = {
            "breach_timeout": 0,
            "breach_cpu": 0,
            "breach_oom": 0,
            "quarantined": 0,
        }

    # -- budgets -------------------------------------------------------
    def budget_for(self, scenario) -> ResourceBudget:
        """The effective budget for one scenario (explicit > adaptive)."""
        spec = self.spec
        cpu = spec.cpu_seconds
        wall = spec.wall_seconds
        rss = spec.rss_bytes
        if spec.adaptive:
            estimate = estimate_cost(scenario)
            if cpu is None:
                cpu = estimate.cpu_seconds * spec.scale
            if wall is None:
                # Explicit CPU caps bound wall too: a scenario that may
                # burn at most N CPU seconds should not wait-forever.
                base = spec.cpu_seconds if spec.cpu_seconds is not None else (
                    estimate.cpu_seconds * spec.scale
                )
                wall = base * WALL_SLACK_FACTOR
            if rss is None:
                rss = int(estimate.rss_bytes * spec.scale)
        return ResourceBudget(wall_seconds=wall, cpu_seconds=cpu, rss_bytes=rss)

    def budget_info(self, scenario, actual_seconds: Optional[float] = None) -> Dict[str, object]:
        """Predicted-vs-actual cost report for a failure record."""
        estimate = estimate_cost(scenario)
        budget = self.budget_for(scenario)
        info: Dict[str, object] = {
            "predicted": estimate.as_dict(),
            "budget": {
                "wall_seconds": budget.wall_seconds,
                "cpu_seconds": budget.cpu_seconds,
                "rss_bytes": budget.rss_bytes,
            },
        }
        if actual_seconds is not None:
            info["actual_wall_seconds"] = round(actual_seconds, 3)
        return info

    # -- quarantine (LeaseTable poison machinery, locally) -------------
    def _quarantine_table(self):
        if self._table is None:
            # Imported lazily: lease depends on parallel which imports
            # this module at load time.
            from repro.experiments.distributed.lease import LeaseTable

            self._table = LeaseTable(
                poison_threshold=self.spec.quarantine_threshold
            )
        return self._table

    def record_breach(
        self,
        key: str,
        scenario,
        iteration: int,
        kind: str,
        actual_seconds: float,
    ) -> bool:
        """Account one budget breach; ``True`` once the key is quarantined.

        Each breach is a distinct failed "worker" in a local
        :class:`LeaseTable`, so the quarantine verdict is literally the
        distributed poison rule evaluated locally.
        """
        if kind not in BUDGET_KINDS:
            return False
        with self._lock:
            table = self._quarantine_table()
            table.load([(key, "", 0)])
            self._breaches[key] = self._breaches.get(key, 0) + 1
            self.counters[f"breach_{kind}"] += 1
            disposition = table.fail(
                "", key, f"attempt-{self._breaches[key]}",
                {"error_type": "BudgetBreached", "kind": kind,
                 "message": f"resource budget breached ({kind})",
                 "traceback": None},
            )
            from repro.experiments.distributed.lease import QUARANTINED

            if disposition != QUARANTINED or key in self.quarantine_records:
                return key in self.quarantine_records
            self.counters["quarantined"] += 1
            self.quarantine_records[key] = {
                "label": getattr(scenario, "label", str(scenario)),
                "policy": getattr(scenario, "policy", None),
                "iteration": iteration,
                "kind": kind,
                "breaches": self._breaches[key],
                **self.budget_info(scenario, actual_seconds),
            }
            return True

    def is_quarantined(self, key: str) -> bool:
        with self._lock:
            return key in self.quarantine_records

    def summary(self) -> Optional[str]:
        """One summary fragment, or ``None`` while nothing breached."""
        with self._lock:
            breaches = sum(
                count for name, count in self.counters.items()
                if name.startswith("breach_")
            )
            if not breaches:
                return None
            detail = ", ".join(
                f"{count} {name[len('breach_'):]}"
                for name, count in sorted(self.counters.items())
                if name.startswith("breach_") and count
            )
            return (
                f"governor: {breaches} budget breach(es) ({detail}), "
                f"{self.counters['quarantined']} quarantined"
            )


# ----------------------------------------------------------------------
# Coordinator-side overload protection
# ----------------------------------------------------------------------
#: OverloadGuard verdicts, in increasing severity.
OK = "ok"
BROWNOUT = "brownout"
SHED = "shed"


def process_rss_bytes() -> int:
    """This process's peak resident set, in bytes (0 where unknown)."""
    try:
        import resource
    except ImportError:
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    return int(peak if sys.platform == "darwin" else peak * 1024)


class OverloadGuard:
    """Admission-control verdicts for the coordinator's ``/lease``.

    The guard watches three pressure signals — pending-event queue
    depth (results the executor has not folded in yet), concurrently
    in-flight HTTP requests, and resident-set size — and answers with
    the mildest sufficient verdict: :data:`BROWNOUT` (shed optional
    work: defer *new* lease grants, keep serving heartbeats and
    completions, which release resources) once any signal crosses
    ``brownout_fraction`` of its limit, :data:`SHED` (refuse leases
    outright with a ``Retry-After``) at the limit.
    """

    def __init__(
        self,
        max_queue_depth: int = 1024,
        max_inflight: int = 32,
        max_rss_bytes: Optional[int] = None,
        brownout_fraction: float = 0.75,
    ) -> None:
        if max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {max_queue_depth}")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if not 0.0 < brownout_fraction <= 1.0:
            raise ValueError(
                f"brownout_fraction must be in (0, 1], got {brownout_fraction}"
            )
        self.max_queue_depth = max_queue_depth
        self.max_inflight = max_inflight
        self.max_rss_bytes = max_rss_bytes
        self.brownout_fraction = brownout_fraction
        self.counters: Dict[str, int] = {"brownouts": 0, "sheds": 0}
        self._lock = threading.Lock()

    def _pressure(self, queue_depth: int, inflight: int) -> float:
        """Worst utilization across the watched signals (1.0 = at limit)."""
        ratios = [
            queue_depth / self.max_queue_depth,
            inflight / self.max_inflight,
        ]
        if self.max_rss_bytes:
            ratios.append(process_rss_bytes() / self.max_rss_bytes)
        return max(ratios)

    def verdict(self, queue_depth: int, inflight: int) -> str:
        """Current verdict without recording an admission decision
        (what health probes read — observing load must not count as
        load shedding)."""
        pressure = self._pressure(queue_depth, inflight)
        if pressure >= 1.0:
            return SHED
        if pressure >= self.brownout_fraction:
            return BROWNOUT
        return OK

    def assess(self, queue_depth: int, inflight: int) -> str:
        """Verdict for one admission decision (counted when degraded)."""
        verdict = self.verdict(queue_depth, inflight)
        if verdict == SHED:
            with self._lock:
                self.counters["sheds"] += 1
        elif verdict == BROWNOUT:
            with self._lock:
                self.counters["brownouts"] += 1
        return verdict


class CircuitBreaker:
    """Consecutive-failure breaker around the durable-commit path.

    ``record_failure`` returns ``True`` the moment the breaker *opens*
    (``threshold`` consecutive failures) — the caller's cue to stop
    acking completions and drain.  Any success closes it again.
    """

    def __init__(self, threshold: int = 5) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.consecutive_failures = 0
        self.trips = 0
        self._open = False
        self._lock = threading.Lock()

    @property
    def open(self) -> bool:
        return self._open

    def record_failure(self) -> bool:
        with self._lock:
            self.consecutive_failures += 1
            if not self._open and self.consecutive_failures >= self.threshold:
                self._open = True
                self.trips += 1
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self.consecutive_failures = 0
            self._open = False

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "open": self._open,
                "consecutive_failures": self.consecutive_failures,
                "threshold": self.threshold,
                "trips": self.trips,
            }


__all__ = [
    "ALL_KINDS",
    "BUDGET_KINDS",
    "BROWNOUT",
    "BudgetExceeded",
    "CircuitBreaker",
    "CostEstimate",
    "GovernorSpec",
    "OK",
    "OverloadGuard",
    "ResourceBudget",
    "SHED",
    "ScenarioGovernor",
    "classify_failure_kind",
    "estimate_cost",
    "process_rss_bytes",
]
