"""Worker loop: lease scenarios from a coordinator, run, report back.

``repro-noc worker --connect HOST:PORT`` runs this loop.  Workers are
deliberately stateless — every durable fact lives in the coordinator's
lease table and write-ahead journal — so a worker can be SIGKILL'd,
restarted or partitioned at any instant:

* while computing, a background heartbeat thread keeps the lease
  alive; when the worker dies the heartbeats stop and the coordinator
  reassigns the scenario after the lease timeout;
* a completion that arrives after reassignment is still accepted if
  the scenario is undone (work is never discarded) and dropped
  idempotently if someone else finished first;
* scenario exceptions are reported via ``/fail`` with a bounded
  traceback and the worker moves on to the next lease — one poisoned
  scenario never takes a worker down with it;
* connection errors back off exponentially with seeded jitter
  (per-worker seed, so a restarting coordinator is not hammered by a
  synchronized fleet), and a worker that cannot reach its coordinator
  for ``max_errors`` consecutive attempts exits nonzero.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import zlib
from typing import Callable, Optional

from repro.telemetry.log import get_logger
from repro.experiments.checkpoint import bound_traceback
from repro.experiments.parallel import RetryBackoff, _execute_unit
from repro.experiments.distributed.protocol import (
    ProtocolError,
    URLError,
    decode_payload,
    encode_payload,
    post_json,
)

log = get_logger("worker")


def default_worker_id() -> str:
    """``hostname-pid`` — unique per live process and debuggable."""
    return f"{socket.gethostname()}-{os.getpid()}"


class _Heartbeat(threading.Thread):
    """Keeps one lease alive while the scenario computes."""

    def __init__(
        self, base_url: str, worker_id: str, lease_id: str, interval: float
    ) -> None:
        super().__init__(name=f"heartbeat-{lease_id[:8]}", daemon=True)
        self.base_url = base_url
        self.worker_id = worker_id
        self.lease_id = lease_id
        self.interval = interval
        self.lost = False
        # Not named ``_stop``: Thread.join() calls an internal method
        # of that name, which an Event attribute would shadow.
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            try:
                reply = post_json(
                    self.base_url + "/heartbeat",
                    {"worker": self.worker_id, "lease": self.lease_id},
                    timeout=max(self.interval, 5.0),
                )
            except (URLError, OSError, ProtocolError):
                continue  # transient: the lease has timeout slack
            if reply.get("status") == "unknown":
                # Reassigned under us; keep computing (the completion
                # may still be accepted) but remember for the log line.
                self.lost = True

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)


def run_worker(
    connect: str,
    worker_id: Optional[str] = None,
    poll: float = 1.0,
    max_errors: int = 30,
    execute: Callable = _execute_unit,
    request_timeout: float = 120.0,
) -> int:
    """Serve one coordinator until it says ``shutdown``.

    Returns a process exit code: ``0`` on an orderly shutdown, ``1``
    when the coordinator stayed unreachable for ``max_errors``
    consecutive attempts.
    """
    worker_id = worker_id or default_worker_id()
    base_url = connect if "://" in connect else f"http://{connect}"
    base_url = base_url.rstrip("/")
    # Seeded per worker id: every worker gets its own deterministic
    # jitter stream, and no two workers retry in lockstep.
    reconnect = RetryBackoff(
        max(poll, 0.1), jitter=0.5,
        seed=zlib.crc32(worker_id.encode("utf-8")),
    )
    errors = 0
    busy_streak = 0
    log.info("worker %s serving %s", worker_id, base_url)
    while True:
        try:
            reply = post_json(
                base_url + "/lease", {"worker": worker_id},
                timeout=request_timeout,
            )
        except (URLError, OSError, ProtocolError) as exc:
            errors += 1
            if errors >= max_errors:
                log.error(
                    "coordinator unreachable after %d attempts: %s",
                    errors, exc,
                )
                return 1
            time.sleep(reconnect.delay(min(errors, 6)))
            continue
        errors = 0
        status = reply.get("status")
        if status == "shutdown":
            log.info("worker %s: coordinator shut down, exiting", worker_id)
            return 0
        if status == "busy":
            # Backpressure (503 + Retry-After): the coordinator shed
            # this lease request.  Not an error — back off with the
            # seeded jitter stream so a saturated coordinator is not
            # hammered by a synchronized fleet, growing the delay
            # while the overload persists.
            busy_streak += 1
            time.sleep(max(
                float(reply.get("retry_after", poll)),
                reconnect.delay(min(busy_streak, 6)),
            ))
            continue
        busy_streak = 0
        if status in ("wait", "draining"):
            time.sleep(float(reply.get("retry_after", poll)))
            continue
        if status != "lease":
            log.warning("worker %s: unexpected reply %r", worker_id, reply)
            time.sleep(poll)
            continue
        _serve_lease(base_url, worker_id, reply, execute, request_timeout)


def _serve_lease(
    base_url: str, worker_id: str, reply: dict,
    execute: Callable, request_timeout: float,
) -> None:
    lease_id = str(reply.get("lease", ""))
    key = str(reply.get("key", ""))
    try:
        unit = decode_payload(reply.get("unit", ""), reply.get("crc", -1))
    except ProtocolError as exc:
        _report_failure(
            base_url, worker_id, lease_id, key,
            "ProtocolError", f"lease payload corrupt: {exc}", None,
            request_timeout,
        )
        return
    heartbeat = _Heartbeat(
        base_url, worker_id, lease_id,
        float(reply.get("heartbeat", 5.0)),
    )
    heartbeat.start()
    try:
        result = execute(unit)
    except BaseException as exc:  # noqa: BLE001 - reported, never fatal
        import traceback as traceback_module

        heartbeat.stop()
        _report_failure(
            base_url, worker_id, lease_id, key,
            type(exc).__name__, str(exc),
            bound_traceback(traceback_module.format_exc()),
            request_timeout,
        )
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
        return
    heartbeat.stop()
    payload, crc = encode_payload(result)
    try:
        ack = post_json(
            base_url + "/complete",
            {
                "worker": worker_id, "lease": lease_id, "key": key,
                "result": payload, "crc": crc,
            },
            timeout=request_timeout,
        )
    except (URLError, OSError, ProtocolError) as exc:
        # The lease will expire and the scenario re-runs elsewhere;
        # losing this upload costs time, never correctness.
        log.warning(
            "worker %s: could not deliver %s (%s); lease will expire",
            worker_id, key[:12], exc,
        )
        return
    status = ack.get("status")
    if status == "duplicate":
        log.info(
            "worker %s: %s already completed elsewhere (dropped)",
            worker_id, key[:12],
        )
    elif status != "committed":
        log.warning(
            "worker %s: completion of %s not committed: %r",
            worker_id, key[:12], ack,
        )
    elif heartbeat.lost:
        log.info(
            "worker %s: late completion of %s accepted", worker_id, key[:12]
        )


def _report_failure(
    base_url: str, worker_id: str, lease_id: str, key: str,
    error_type: str, message: str, traceback: Optional[str],
    request_timeout: float,
) -> None:
    log.warning("worker %s: scenario %s failed: %s", worker_id, key[:12], message)
    try:
        post_json(
            base_url + "/fail",
            {
                "worker": worker_id, "lease": lease_id, "key": key,
                "error_type": error_type, "message": message,
                "traceback": traceback,
            },
            timeout=request_timeout,
        )
    except (URLError, OSError, ProtocolError):
        pass  # the lease expiry path reports it instead
