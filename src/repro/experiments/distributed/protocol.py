"""Wire protocol of the distributed campaign engine.

Everything on the wire is JSON over plain HTTP (stdlib only — no new
dependencies), with simulation objects (``WorkUnit`` tuples going out,
:class:`~repro.experiments.runner.ScenarioResult` objects coming back)
carried as base64-encoded pickles guarded by a CRC-32 — the same
record scheme the write-ahead :class:`ScenarioJournal` uses, so a
completion that survives the network round-trip is byte-for-byte what
gets journaled.

Endpoints (all bodies are JSON objects):

======================  ================================================
``POST /lease``         ``{"worker": id}`` →
                        ``{"status": "lease", "lease": id, "key": hash,
                        "unit": b64, "crc": int, "lease_timeout": s,
                        "heartbeat": s}`` | ``{"status": "wait",
                        "retry_after": s}`` | ``{"status": "draining",
                        ...}`` | ``{"status": "busy", "retry_after": s}``
                        (HTTP 503 + ``Retry-After`` — admission control
                        shed the request) | ``{"status": "shutdown"}``
``POST /heartbeat``     ``{"worker": id, "lease": id}`` →
                        ``{"status": "ok" | "unknown"}`` (``unknown``
                        means the lease expired and was reassigned)
``POST /complete``      ``{"worker": id, "lease": id, "key": hash,
                        "result": b64, "crc": int}`` → ``{"status":
                        "committed" | "duplicate" | "rejected", ...}``
``POST /fail``          ``{"worker": id, "lease": id, "key": hash,
                        "error_type": str, "message": str,
                        "traceback": str}`` → ``{"status": "requeued" |
                        "poisoned" | "duplicate"}``
``GET /status``         → coordinator state, lease-table snapshot,
                        per-worker last-heartbeat ages
``GET /healthz``        → overload health: verdict (``ok`` |
                        ``brownout`` | ``shed``), queue depth, in-flight
                        requests, lease churn, memory pressure, commit
                        circuit-breaker state.  Served even while
                        ``/lease`` sheds, so probes see *why*.
======================  ================================================

Robustness contract: a ``committed`` ack is sent only *after* the
result is fsync'd into the scenario journal, so a worker (or the whole
network) can die the instant after the ack without losing the work.
Duplicate and late completions are deduplicated by scenario hash —
re-executing a unit is always safe, re-committing it is a no-op.
"""

from __future__ import annotations

import base64
import dataclasses
import json
import pickle
import zlib
from typing import Any, Optional, Tuple
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

#: Bump on incompatible wire-format changes; carried in /status and
#: checked by workers so a mixed-version fleet fails loudly, not weirdly.
PROTOCOL_VERSION = 1

#: Default coordinator port of ``repro-noc serve`` (0 = ephemeral).
DEFAULT_PORT = 8765


class ProtocolError(RuntimeError):
    """A payload failed its CRC/pickle validation or an HTTP exchange
    returned something that is not valid protocol JSON."""


@dataclasses.dataclass
class DistributedSpec:
    """Configuration of one embedded coordinator.

    Attributes
    ----------
    bind, port:
        Listen address.  Port ``0`` binds an ephemeral port (the bound
        address is available via ``Executor.distributed_address()`` and
        ``port_file``).
    local_workers:
        ``repro-noc worker`` subprocesses to spawn against the loopback
        address (the ``--workers N`` story); external workers can attach
        regardless.
    lease_timeout:
        Seconds a lease stays valid without a heartbeat before the
        coordinator reassigns the scenario.
    heartbeat_interval:
        Seconds between worker heartbeats (``None`` = lease_timeout/4).
    poll_interval:
        Coordinator event-loop tick and the wait workers are told to
        sleep when no work is available.
    poison_threshold:
        Distinct workers that must fail a scenario before it is
        quarantined as poisoned instead of being requeued.
    requeue_backoff, requeue_jitter, jitter_seed:
        Backoff schedule for requeueing failed/expired leases
        (:class:`~repro.experiments.parallel.RetryBackoff`): base
        seconds, jitter fraction, and the seed making the jitter stream
        deterministic.
    port_file:
        When set, ``host:port`` is written here (atomically) once the
        coordinator is bound — how scripts find an ephemeral port.
    max_inflight:
        Concurrently-processing HTTP requests above which ``/lease``
        sheds (``busy`` + ``Retry-After``); brownout starts at 75%.
    queue_limit:
        Pending result-event queue depth (completions the executor has
        not folded in yet) above which ``/lease`` sheds.
    commit_breaker_threshold:
        Consecutive durable-commit failures that open the circuit
        breaker: the coordinator stops acking completions and drains
        instead of wedging against a broken journal.
    shutdown_grace:
        Seconds ``close()`` keeps the socket answering ``shutdown`` so
        polling workers exit cleanly instead of spinning on a dead
        address (the wait ends early once every recently-seen worker
        has acknowledged).
    """

    bind: str = "127.0.0.1"
    port: int = 0
    local_workers: int = 0
    lease_timeout: float = 60.0
    heartbeat_interval: Optional[float] = None
    poll_interval: float = 0.2
    poison_threshold: int = 3
    requeue_backoff: float = 0.5
    requeue_jitter: float = 0.5
    jitter_seed: Optional[int] = None
    port_file: Optional[str] = None
    max_inflight: int = 32
    queue_limit: int = 1024
    commit_breaker_threshold: int = 5
    shutdown_grace: float = 1.0

    def __post_init__(self) -> None:
        if self.shutdown_grace < 0:
            raise ValueError(
                f"shutdown_grace must be >= 0, got {self.shutdown_grace}"
            )
        if self.lease_timeout <= 0:
            raise ValueError(f"lease_timeout must be > 0, got {self.lease_timeout}")
        if self.poll_interval <= 0:
            raise ValueError(f"poll_interval must be > 0, got {self.poll_interval}")
        if self.poison_threshold < 1:
            raise ValueError(
                f"poison_threshold must be >= 1, got {self.poison_threshold}"
            )
        if self.local_workers < 0:
            raise ValueError(f"local_workers must be >= 0, got {self.local_workers}")
        if self.heartbeat_interval is not None:
            if self.heartbeat_interval <= 0:
                raise ValueError(
                    f"heartbeat_interval must be > 0, got {self.heartbeat_interval}"
                )
            if self.heartbeat_interval >= self.lease_timeout:
                # A worker that heartbeats at (or slower than) the lease
                # timeout always loses its lease between beats.
                raise ValueError(
                    f"heartbeat_interval ({self.heartbeat_interval}) must be "
                    f"< lease_timeout ({self.lease_timeout})"
                )
        if self.requeue_backoff < 0:
            raise ValueError(
                f"requeue_backoff must be >= 0, got {self.requeue_backoff}"
            )
        if self.requeue_jitter < 0:
            raise ValueError(
                f"requeue_jitter must be >= 0, got {self.requeue_jitter}"
            )
        if self.max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.commit_breaker_threshold < 1:
            raise ValueError(
                f"commit_breaker_threshold must be >= 1, "
                f"got {self.commit_breaker_threshold}"
            )

    @property
    def heartbeat(self) -> float:
        """Effective heartbeat interval in seconds."""
        if self.heartbeat_interval is not None:
            return self.heartbeat_interval
        return max(self.lease_timeout / 4.0, 0.05)


def encode_payload(obj: Any) -> Tuple[str, int]:
    """``(base64 pickle, crc32)`` of a simulation object."""
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return base64.b64encode(blob).decode("ascii"), zlib.crc32(blob) & 0xFFFFFFFF


def decode_payload(payload: str, crc: int) -> Any:
    """Inverse of :func:`encode_payload`; :class:`ProtocolError` on rot."""
    try:
        blob = base64.b64decode(payload.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError, AttributeError) as exc:
        raise ProtocolError(f"payload is not valid base64: {exc}") from exc
    if zlib.crc32(blob) & 0xFFFFFFFF != crc:
        raise ProtocolError("payload CRC mismatch (corrupted in transit)")
    try:
        return pickle.loads(blob)
    except Exception as exc:  # noqa: BLE001 - arbitrary bytes fail arbitrarily
        raise ProtocolError(f"payload does not unpickle: {exc}") from exc


def post_json(url: str, blob: Any, timeout: float = 30.0) -> Any:
    """One JSON-in/JSON-out POST; network errors propagate as
    :class:`urllib.error.URLError` for the caller's retry loop."""
    request = Request(
        url,
        data=json.dumps(blob).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    return _exchange(request, timeout)


def get_json(url: str, timeout: float = 30.0) -> Any:
    """One JSON GET (the ``/status`` endpoint)."""
    return _exchange(Request(url), timeout)


def _exchange(request: Request, timeout: float) -> Any:
    try:
        with urlopen(request, timeout=timeout) as response:
            raw = response.read()
    except HTTPError as exc:
        # The coordinator answers protocol-level problems with JSON
        # bodies on 4xx/5xx; surface those instead of the bare status.
        raw = exc.read()
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise ProtocolError(f"{request.full_url}: HTTP {exc.code}") from exc
    try:
        return json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"{request.full_url}: response is not JSON") from exc


__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_PORT",
    "DistributedSpec",
    "ProtocolError",
    "encode_payload",
    "decode_payload",
    "post_json",
    "get_json",
    "URLError",
]
