"""Fault-tolerant distributed campaign execution.

A coordinator/worker architecture sharding campaigns across hosts over
a minimal HTTP/JSON protocol, engineered first for fault tolerance:
lease-based work assignment with heartbeats and deadline expiry,
idempotent result commits through the write-ahead scenario journal
(journal-as-replication-log — ``--resume`` and crash-safety compose
for free), seeded-jitter backoff on reassignment, and quarantine of
poison scenarios that fail on several distinct workers.

Modules
-------
``protocol``
    Wire format: JSON endpoints, CRC-guarded pickle payloads,
    :class:`~repro.experiments.distributed.protocol.DistributedSpec`.
``lease``
    The coordinator's authoritative lease table (grant / heartbeat /
    complete / fail / expire state machine).
``coordinator``
    Embedded HTTP server + durable commit pipeline + loopback worker
    spawning; feeds the executor's event loop.
``worker``
    The ``repro-noc worker`` loop: lease, heartbeat, execute, report.

Entry points: ``Executor(distributed=DistributedSpec(...))`` (or
``--workers N`` / ``repro-noc serve`` on the CLI) on the coordinator
side, ``repro-noc worker --connect HOST:PORT`` on the worker side.
"""

from repro.experiments.distributed.protocol import (  # noqa: F401
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    DistributedSpec,
    ProtocolError,
)
from repro.experiments.distributed.lease import LeaseTable  # noqa: F401
from repro.experiments.distributed.coordinator import (  # noqa: F401
    POISON_ERROR_TYPE,
    CoordinatorServer,
)
from repro.experiments.distributed.worker import (  # noqa: F401
    default_worker_id,
    run_worker,
)

__all__ = [
    "DEFAULT_PORT",
    "PROTOCOL_VERSION",
    "DistributedSpec",
    "ProtocolError",
    "LeaseTable",
    "POISON_ERROR_TYPE",
    "CoordinatorServer",
    "default_worker_id",
    "run_worker",
]
