"""Embedded campaign coordinator: HTTP lease server + commit pipeline.

One :class:`CoordinatorServer` lives inside the campaign process (the
``Executor``'s distributed backend).  It owns the
:class:`~repro.experiments.distributed.lease.LeaseTable`, serves the
protocol endpoints on a ``ThreadingHTTPServer``, optionally spawns
loopback ``repro-noc worker`` subprocesses, and feeds verified
completions to the executor through a thread-safe event queue.

Durability ordering on ``/complete`` (the heart of the fault-tolerance
contract):

1. decode + CRC-check the uploaded result (corrupt uploads are
   *requeued*, never committed);
2. claim the key in the lease table (dedup point — duplicates and
   post-poison stragglers are dropped here);
3. ``commit`` — the executor appends the result to the write-ahead
   scenario journal and fsyncs (idempotent per key);
4. only then ack ``committed`` to the worker and enqueue the result
   event.

A coordinator SIGKILL between (3) and (4) therefore loses nothing: the
journal already holds the record and ``--resume`` serves it without
re-running.  A crash between (2) and (3) re-runs one scenario — safe,
because execution is a pure function of the unit.
"""

from __future__ import annotations

import json
import os
import queue
import subprocess
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.telemetry.log import get_logger
from repro.experiments.governor import (
    BROWNOUT,
    SHED,
    CircuitBreaker,
    OverloadGuard,
    process_rss_bytes,
)
from repro.experiments.parallel import RetryBackoff
from repro.experiments.distributed.lease import (
    COMMITTED,
    QUARANTINED,
    LeaseTable,
)
from repro.experiments.distributed.protocol import (
    PROTOCOL_VERSION,
    DistributedSpec,
    ProtocolError,
    decode_payload,
    encode_payload,
)

log = get_logger("distributed")

#: Error type surfaced on quarantined scenarios' failure records.
POISON_ERROR_TYPE = "PoisonedScenario"

#: Coordinator lifecycle states (reported by ``/status``).
SERVING = "serving"
DRAINING = "draining"
SHUTDOWN = "shutdown"


class CoordinatorServer:
    """Lease coordinator bound to one executor.

    Parameters
    ----------
    spec:
        The :class:`DistributedSpec` (bind address, lease timing,
        poison threshold, loopback worker count...).
    commit:
        Callable ``(key, ScenarioResult)`` invoked *before* a
        completion is acked — the executor journals there.  A raise
        reopens the work item (the result was not durable).
    """

    def __init__(
        self,
        spec: DistributedSpec,
        commit: Optional[Callable[[str, object], None]] = None,
    ) -> None:
        self.spec = spec
        self.commit = commit
        self.table = LeaseTable(
            lease_timeout=spec.lease_timeout,
            backoff=RetryBackoff(
                spec.requeue_backoff, spec.requeue_jitter, spec.jitter_seed
            ),
            poison_threshold=spec.poison_threshold,
        )
        #: ``("result", key, ScenarioResult)`` and ``("poisoned", key,
        #: error dict)`` events, consumed by the executor's map loop.
        self.events: "queue.Queue[Tuple[str, str, object]]" = queue.Queue()
        self.state = SERVING
        self.workers_seen: Dict[str, float] = {}
        #: Workers that polled after shutdown began (they saw the
        #: ``shutdown`` reply and are exiting — no need to wait longer).
        self._farewells: set = set()
        self.address: Tuple[str, int] = (spec.bind, spec.port)
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._local: List[subprocess.Popen] = []
        #: Admission control on /lease: shed (HTTP 503 + Retry-After)
        #: when the pending-event queue or handler concurrency is
        #: saturated, brownout (defer new grants only) at 75%.
        self.guard = OverloadGuard(
            max_queue_depth=spec.queue_limit,
            max_inflight=spec.max_inflight,
        )
        #: Opens after K consecutive durable-commit failures: stop
        #: acking completions and drain instead of wedging the fleet
        #: against a broken journal.
        self.breaker = CircuitBreaker(spec.commit_breaker_threshold)
        self._inflight = 0
        self._inflight_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        server = self

        class Handler(_CoordinatorHandler):
            coordinator = server

        self._httpd = ThreadingHTTPServer((self.spec.bind, self.spec.port), Handler)
        self._httpd.daemon_threads = True
        self.address = (
            self._httpd.server_address[0],
            self._httpd.server_address[1],
        )
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-coordinator",
            daemon=True,
        )
        self._thread.start()
        if self.spec.port_file:
            from repro.experiments.checkpoint import atomic_write_text

            atomic_write_text(
                self.spec.port_file, f"{self.address[0]}:{self.address[1]}\n"
            )
        for _ in range(self.spec.local_workers):
            self._spawn_local_worker()

    def _spawn_local_worker(self) -> None:
        host, port = self.address
        command = [
            sys.executable, "-m", "repro.cli", "worker",
            "--connect", f"{host}:{port}",
        ]
        # A detached session keeps a terminal ^C (whole process group)
        # from killing workers mid-scenario; the coordinator drains and
        # terminates them itself on close().
        self._local.append(
            subprocess.Popen(
                command, env=_worker_environment(), start_new_session=True
            )
        )

    def submit(self, batch: List[Tuple[str, Tuple]]) -> None:
        """Load ``(key, WorkUnit)`` pairs into the lease table."""
        encoded = []
        for key, unit in batch:
            payload, crc = encode_payload(unit)
            encoded.append((key, payload, crc))
        self.table.load(encoded)

    def expire_leases(self) -> None:
        """Reclaim dead-worker leases; surface any fresh poisonings."""
        for expired in self.table.expire():
            log.warning(
                "lease for %s expired (worker %s); %s",
                expired.key[:12], expired.worker,
                "quarantined" if expired.poisoned else "requeued",
            )
            if expired.poisoned:
                self.events.put(("poisoned", expired.key, expired.error))

    def drain(self) -> None:
        """Stop granting leases; in-flight ones finish or expire."""
        if self.state == SERVING:
            self.state = DRAINING
            self.table.pause()

    def close(self) -> None:
        """Shut down: workers are told/forced to stop, socket closes."""
        self.state = SHUTDOWN
        self.table.pause()
        self._grace_period()
        for proc in self._local:
            if proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + 5.0
        for proc in self._local:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        self._local.clear()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None

    def _grace_period(self) -> None:
        """Keep answering ``shutdown`` until live workers have seen it.

        A worker that polls a closed socket burns through its
        reconnect budget before exiting nonzero; one that reads the
        ``shutdown`` reply exits 0 immediately.  Workers whose last
        contact predates the window (e.g. SIGKILL'd mid-campaign) are
        not waited for.
        """
        if self._httpd is None or self.spec.shutdown_grace <= 0:
            return
        started = time.monotonic()
        window = max(3.0, 4 * self.spec.poll_interval)
        awaited = {
            worker for worker, seen in self.workers_seen.items()
            if started - seen <= window
        }
        deadline = started + self.spec.shutdown_grace
        while awaited - self._farewells and time.monotonic() < deadline:
            time.sleep(0.02)

    # -- request accounting (handler threads) --------------------------
    def _request_started(self) -> None:
        with self._inflight_lock:
            self._inflight += 1

    def _request_finished(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1

    @property
    def inflight(self) -> int:
        """Concurrently-processing HTTP requests (including this one)."""
        with self._inflight_lock:
            return self._inflight

    # -- reporting -----------------------------------------------------
    def summary(self) -> str:
        snap = self.table.snapshot()
        counters = snap["counters"]
        line = (
            f"distributed: {counters['committed']} committed over "
            f"{counters['leases_granted']} lease(s), "
            f"{len(self.workers_seen)} worker(s)"
        )
        extras = []
        if counters["expiries"]:
            extras.append(f"{counters['expiries']} expired")
        if counters["duplicates_dropped"]:
            extras.append(f"{counters['duplicates_dropped']} duplicate(s) dropped")
        if counters["late_accepted"]:
            extras.append(f"{counters['late_accepted']} late accepted")
        if counters["poisoned"]:
            extras.append(f"{counters['poisoned']} poisoned")
        if self.guard.counters["sheds"]:
            extras.append(f"{self.guard.counters['sheds']} lease(s) shed")
        if self.guard.counters["brownouts"]:
            extras.append(f"{self.guard.counters['brownouts']} brownout(s)")
        if self.breaker.trips:
            extras.append(f"commit breaker tripped {self.breaker.trips}x")
        if extras:
            line += " (" + ", ".join(extras) + ")"
        return line

    def status(self) -> Dict[str, object]:
        now = time.monotonic()
        return {
            "protocol": PROTOCOL_VERSION,
            "state": self.state,
            "address": list(self.address),
            "table": self.table.snapshot(),
            "workers": {
                worker: round(now - seen, 3)
                for worker, seen in sorted(self.workers_seen.items())
            },
        }

    def healthz(self) -> Dict[str, object]:
        """Overload health for probes (served even while shedding)."""
        queue_depth = self.events.qsize()
        inflight = self.inflight
        verdict = self.guard.verdict(queue_depth, inflight)
        counters = self.table.snapshot()["counters"]
        healthy = verdict == "ok" and not self.breaker.open
        return {
            "status": "ok" if healthy else "degraded",
            "verdict": verdict,
            "state": self.state,
            "protocol": PROTOCOL_VERSION,
            "queue_depth": queue_depth,
            "queue_limit": self.spec.queue_limit,
            "inflight": inflight,
            "max_inflight": self.spec.max_inflight,
            "memory_rss_bytes": process_rss_bytes(),
            "lease_churn": {
                name: counters[name]
                for name in ("leases_granted", "expiries", "requeued",
                             "poisoned", "committed")
            },
            "workers": len(self.workers_seen),
            "shed": dict(self.guard.counters),
            "commit_breaker": self.breaker.snapshot(),
        }

    # -- endpoint logic (called from handler threads) ------------------
    def handle_lease(self, body: Dict) -> Dict:
        worker = str(body.get("worker", "anonymous"))
        self.workers_seen[worker] = time.monotonic()
        if self.state == SHUTDOWN:
            self._farewells.add(worker)
            return {"status": "shutdown"}
        if self.state == DRAINING:
            return {"status": "draining", "retry_after": self.spec.poll_interval}
        # Admission control: granting a lease is the one *optional*
        # piece of work here (completions and heartbeats release
        # resources; leases consume them), so it sheds first.  SHED is
        # a hard 503 + Retry-After; BROWNOUT defers new grants while
        # everything already in flight keeps being served.
        verdict = self.guard.assess(self.events.qsize(), self.inflight)
        if verdict == SHED:
            return {"status": "busy", "retry_after": self.spec.poll_interval}
        if verdict == BROWNOUT:
            return {
                "status": "wait",
                "retry_after": self.spec.poll_interval,
                "reason": "brownout",
            }
        granted = self.table.grant(worker)
        if granted is None:
            return {"status": "wait", "retry_after": self.spec.poll_interval}
        grant, payload, crc = granted
        return {
            "status": "lease",
            "lease": grant.lease_id,
            "key": grant.key,
            "unit": payload,
            "crc": crc,
            "lease_timeout": self.spec.lease_timeout,
            "heartbeat": self.spec.heartbeat,
        }

    def handle_heartbeat(self, body: Dict) -> Dict:
        worker = str(body.get("worker", "anonymous"))
        self.workers_seen[worker] = time.monotonic()
        alive = self.table.heartbeat(str(body.get("lease", "")))
        return {"status": "ok" if alive else "unknown"}

    def handle_complete(self, body: Dict) -> Dict:
        worker = str(body.get("worker", "anonymous"))
        lease_id = str(body.get("lease", ""))
        key = str(body.get("key", ""))
        self.workers_seen[worker] = time.monotonic()
        if self.breaker.open:
            # The journal is broken: acking would promise durability we
            # cannot deliver.  Leave the lease alone (it expires and
            # requeues for the resume run) and keep draining.
            return {
                "status": "rejected",
                "reason": "commit circuit open; coordinator draining",
            }
        try:
            result = decode_payload(body.get("result", ""), body.get("crc", -1))
        except ProtocolError as exc:
            # Corrupt in transit: never commit, requeue for a clean run.
            disposition = self.table.fail(
                lease_id, key, worker,
                {"error_type": "CorruptUpload", "message": str(exc),
                 "traceback": None},
            )
            if disposition == QUARANTINED:
                self._emit_poison(key)
            return {"status": "rejected", "reason": str(exc)}
        disposition = self.table.complete(lease_id, key, worker)
        if disposition != COMMITTED:
            return {"status": disposition}
        if self.commit is not None:
            try:
                self.commit(key, result)
            except Exception as exc:  # noqa: BLE001 - never ack a lost commit
                self.table.reopen(key)
                log.error("durable commit of %s failed: %s", key[:12], exc)
                if self.breaker.record_failure():
                    log.error(
                        "commit circuit breaker opened after %d consecutive "
                        "failures; draining instead of wedging",
                        self.breaker.consecutive_failures,
                    )
                    self.drain()
                return {"status": "rejected", "reason": f"commit failed: {exc}"}
            else:
                self.breaker.record_success()
        self.events.put(("result", key, result))
        return {"status": COMMITTED}

    def handle_fail(self, body: Dict) -> Dict:
        worker = str(body.get("worker", "anonymous"))
        key = str(body.get("key", ""))
        self.workers_seen[worker] = time.monotonic()
        error = {
            "error_type": str(body.get("error_type", "WorkerError")),
            "message": str(body.get("message", "")),
            "traceback": body.get("traceback"),
        }
        disposition = self.table.fail(
            str(body.get("lease", "")), key, worker, error
        )
        if disposition == QUARANTINED:
            self._emit_poison(key)
        return {"status": disposition}

    def _emit_poison(self, key: str) -> None:
        error = self.table.error_of(key) or {}
        error.setdefault("error_type", POISON_ERROR_TYPE)
        error["message"] = (
            f"failed on {len(error.get('workers') or []) or 'several'} "
            f"distinct worker(s): {error.get('message', 'no detail')}"
        )
        log.warning("scenario %s quarantined: %s", key[:12], error["message"])
        self.events.put(("poisoned", key, error))


class _CoordinatorHandler(BaseHTTPRequestHandler):
    """Thin HTTP shim over :class:`CoordinatorServer` endpoint logic."""

    coordinator: CoordinatorServer = None  # injected per-server subclass
    protocol_version = "HTTP/1.1"

    ROUTES = {
        "/lease": "handle_lease",
        "/heartbeat": "handle_heartbeat",
        "/complete": "handle_complete",
        "/fail": "handle_fail",
    }

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        handler_name = self.ROUTES.get(self.path)
        if handler_name is None:
            self._reply(404, {"status": "error", "reason": "unknown endpoint"})
            return
        self.coordinator._request_started()
        try:
            try:
                length = int(self.headers.get("Content-Length", 0))
                body = json.loads(self.rfile.read(length).decode("utf-8"))
                if not isinstance(body, dict):
                    raise ValueError("body must be a JSON object")
            except (ValueError, UnicodeDecodeError) as exc:
                self._reply(400, {"status": "error", "reason": f"bad request: {exc}"})
                return
            try:
                reply = getattr(self.coordinator, handler_name)(body)
            except Exception as exc:  # noqa: BLE001 - a handler bug must not kill the fleet
                log.error("coordinator %s handler failed: %s", self.path, exc)
                self._reply(500, {"status": "error", "reason": str(exc)})
                return
            if reply.get("status") == "busy":
                # Backpressure, not failure: 503 + Retry-After tells
                # generic HTTP clients the same thing the JSON body
                # tells repro-noc workers.
                self._reply(503, reply, retry_after=reply.get("retry_after"))
            else:
                self._reply(200, reply)
        finally:
            self.coordinator._request_finished()

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/status":
            self._reply(200, self.coordinator.status())
        elif self.path == "/healthz":
            # Served unconditionally — a saturated coordinator must
            # still tell probes *why* it is shedding.
            blob = self.coordinator.healthz()
            self._reply(200 if blob["status"] == "ok" else 503, blob)
        else:
            self._reply(404, {"status": "error", "reason": "unknown endpoint"})

    def _reply(
        self, code: int, blob: Dict, retry_after: Optional[float] = None
    ) -> None:
        raw = json.dumps(blob).encode("utf-8")
        try:
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(raw)))
            if retry_after is not None:
                # RFC 7231 wants integral seconds; round up so clients
                # never come back *before* the window ends.
                self.send_header("Retry-After", str(max(1, int(retry_after + 0.5))))
            self.end_headers()
            self.wfile.write(raw)
        except (BrokenPipeError, ConnectionResetError):
            pass  # worker died mid-reply; its lease will expire

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        log.debug("%s %s", self.address_string(), format % args)


def _worker_environment() -> Dict[str, str]:
    """Environment for spawned loopback workers: make ``repro``
    importable even when the coordinator itself runs from a source
    tree that is not installed."""
    import repro

    env = dict(os.environ)
    source_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        source_root if not existing
        else source_root + os.pathsep + existing
    )
    return env
