"""Lease table: the coordinator's authoritative work ledger.

Every scenario in flight across the fleet is one :class:`WorkItem`
keyed by its content hash (the same hash the result cache and the
write-ahead journal use).  The table is a small, lock-guarded state
machine engineered around the failure matrix:

* **Worker crash / SIGKILL** — heartbeats stop, the lease deadline
  passes, :meth:`expire` returns the scenario to the queue (with
  exponential backoff + seeded jitter) and it is granted to the next
  worker.  Nothing committed is ever re-run: completions are
  deduplicated by key.
* **Partition / slow worker** — a worker that lost its lease but kept
  computing may still deliver: a valid result for an *undone* key is
  accepted (``late_accepted``; work is never thrown away), while a
  result for a key that someone else already completed is dropped
  idempotently (``duplicates_dropped``).
* **Poison scenario** — a scenario that fails on
  ``poison_threshold`` *distinct* workers is quarantined
  (``POISONED``) instead of wedging the campaign in a
  grant/crash/expire loop; the executor surfaces it as a
  :class:`~repro.experiments.parallel.ScenarioFailure` record.
* **Coordinator drain** — :meth:`pause` stops new grants; in-flight
  leases still complete (or expire), after which the caller can count
  :meth:`remaining` and raise ``CampaignInterrupted``.

The clock is injectable so expiry/backoff logic is unit-testable
without sleeping.
"""

from __future__ import annotations

import dataclasses
import threading
import time
import uuid
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments.governor import classify_failure_kind
from repro.experiments.parallel import RetryBackoff

#: WorkItem lifecycle states.
PENDING = "pending"
LEASED = "leased"
DONE = "done"
POISONED = "poisoned"

#: Dispositions returned by :meth:`LeaseTable.complete` / :meth:`fail`.
COMMITTED = "committed"
DUPLICATE = "duplicate"
REQUEUED = "requeued"
QUARANTINED = "poisoned"
UNKNOWN = "unknown"


@dataclasses.dataclass
class LeaseGrant:
    """One granted lease: who computes which scenario until when."""

    lease_id: str
    key: str
    worker: str
    deadline: float


@dataclasses.dataclass
class ExpiredLease:
    """One lease the expiry scan reclaimed (crashed/partitioned worker)."""

    key: str
    worker: str
    poisoned: bool
    error: Dict[str, object]


class WorkItem:
    """One scenario's distributed execution state."""

    __slots__ = (
        "key", "payload", "crc", "state", "attempts",
        "failed_workers", "not_before", "lease", "last_error",
    )

    def __init__(self, key: str, payload: str, crc: int) -> None:
        self.key = key
        self.payload = payload
        self.crc = crc
        self.state = PENDING
        #: Failed attempts so far (drives the backoff schedule).
        self.attempts = 0
        #: Distinct workers that failed this scenario (poison evidence).
        self.failed_workers: set = set()
        #: Monotonic time before which the item must not be regranted.
        self.not_before = 0.0
        self.lease: Optional[LeaseGrant] = None
        self.last_error: Optional[Dict[str, object]] = None


class LeaseTable:
    """Thread-safe lease bookkeeping for one coordinator."""

    def __init__(
        self,
        lease_timeout: float = 60.0,
        backoff: Optional[RetryBackoff] = None,
        poison_threshold: int = 3,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.lease_timeout = lease_timeout
        self.backoff = backoff if backoff is not None else RetryBackoff(0.5)
        self.poison_threshold = poison_threshold
        self.clock = clock
        self.granting = True
        self._lock = threading.Lock()
        self._items: Dict[str, WorkItem] = {}
        self._order: List[str] = []
        self.counters: Dict[str, int] = {
            "leases_granted": 0,
            "heartbeats": 0,
            "committed": 0,
            "late_accepted": 0,
            "duplicates_dropped": 0,
            "expiries": 0,
            "requeued": 0,
            "poisoned": 0,
        }

    # -- loading -------------------------------------------------------
    def load(self, batch: List[Tuple[str, str, int]]) -> None:
        """Add ``(key, unit payload b64, crc)`` work; known keys ignored."""
        with self._lock:
            for key, payload, crc in batch:
                if key in self._items:
                    continue
                self._items[key] = WorkItem(key, payload, crc)
                self._order.append(key)

    # -- worker-facing transitions -------------------------------------
    def grant(self, worker: str) -> Optional[Tuple[LeaseGrant, str, int]]:
        """Lease the oldest eligible scenario to ``worker`` (or ``None``)."""
        now = self.clock()
        with self._lock:
            self._expire_locked(now)
            if not self.granting:
                return None
            for key in self._order:
                item = self._items[key]
                if item.state is not PENDING or item.not_before > now:
                    continue
                # A worker that already failed this scenario gets a
                # different one first — poison evidence needs distinct
                # workers, and its failure mode may be machine-local.
                if worker in item.failed_workers and self._other_eligible(
                    worker, now, skip=key
                ):
                    continue
                grant = LeaseGrant(
                    lease_id=uuid.uuid4().hex,
                    key=key,
                    worker=worker,
                    deadline=now + self.lease_timeout,
                )
                item.state = LEASED
                item.lease = grant
                self.counters["leases_granted"] += 1
                return grant, item.payload, item.crc
            return None

    def _other_eligible(self, worker: str, now: float, skip: str) -> bool:
        for key in self._order:
            item = self._items[key]
            if (
                key != skip
                and item.state is PENDING
                and item.not_before <= now
                and worker not in item.failed_workers
            ):
                return True
        return False

    def heartbeat(self, lease_id: str) -> bool:
        """Extend a live lease; ``False`` tells the worker it lost it."""
        now = self.clock()
        with self._lock:
            item = self._find_lease_locked(lease_id)
            if item is None:
                return False
            item.lease.deadline = now + self.lease_timeout
            self.counters["heartbeats"] += 1
            return True

    def complete(self, lease_id: str, key: str, worker: str) -> str:
        """Record a finished scenario; dedup strictly by key.

        Returns :data:`COMMITTED` (first valid completion — commit it),
        :data:`DUPLICATE` (someone already completed it — drop), or
        :data:`UNKNOWN` (key never belonged to this campaign).
        """
        with self._lock:
            item = self._items.get(key)
            if item is None:
                return UNKNOWN
            if item.state is DONE:
                self.counters["duplicates_dropped"] += 1
                return DUPLICATE
            if item.state is POISONED:
                # Already surfaced as a failure record; accepting now
                # would fork the campaign's view of the result set.
                self.counters["duplicates_dropped"] += 1
                return DUPLICATE
            expired_lease = (
                item.lease is None or item.lease.lease_id != lease_id
            )
            if expired_lease:
                # Partitioned/slow worker finishing after reassignment:
                # the key is still undone, so the work is kept.
                self.counters["late_accepted"] += 1
            item.state = DONE
            item.lease = None
            item.payload = ""  # the unit pickle is no longer needed
            self.counters["committed"] += 1
            return COMMITTED

    def reopen(self, key: str) -> None:
        """Undo a :meth:`complete` whose durable commit failed."""
        with self._lock:
            item = self._items.get(key)
            if item is not None and item.state is DONE:
                item.state = PENDING
                self.counters["committed"] -= 1

    def fail(
        self, lease_id: str, key: str, worker: str,
        error: Optional[Dict[str, object]] = None,
    ) -> str:
        """Record a worker-reported failure; requeue or quarantine."""
        now = self.clock()
        with self._lock:
            item = self._items.get(key)
            if item is None:
                return UNKNOWN
            if item.state in (DONE, POISONED):
                return DUPLICATE
            if item.state is LEASED and item.lease is not None and (
                item.lease.lease_id != lease_id
            ):
                # A reassigned worker reporting a stale failure must not
                # steal the live lease or its poison accounting.
                item.failed_workers.add(worker)
                return DUPLICATE
            return self._settle_failure_locked(item, worker, error, now)

    # -- expiry --------------------------------------------------------
    def expire(self, now: Optional[float] = None) -> List[ExpiredLease]:
        """Reclaim every lease past its deadline (crashed workers)."""
        with self._lock:
            return self._expire_locked(self.clock() if now is None else now)

    def _expire_locked(self, now: float) -> List[ExpiredLease]:
        reclaimed: List[ExpiredLease] = []
        for key in self._order:
            item = self._items[key]
            if item.state is not LEASED or item.lease is None:
                continue
            if item.lease.deadline > now:
                continue
            worker = item.lease.worker
            self.counters["expiries"] += 1
            error = {
                "error_type": "LeaseExpired",
                # A worker that stopped heartbeating is indistinguishable
                # from a hang: same typed kind as a parent-side deadline.
                "kind": "timeout",
                "message": (
                    f"worker {worker!r} stopped heartbeating "
                    f"(lease timeout {self.lease_timeout}s)"
                ),
                "traceback": None,
            }
            disposition = self._settle_failure_locked(item, worker, error, now)
            reclaimed.append(
                ExpiredLease(
                    key=key,
                    worker=worker,
                    poisoned=disposition == QUARANTINED,
                    error=dict(item.last_error or error),
                )
            )
        return reclaimed

    def _settle_failure_locked(
        self, item: WorkItem, worker: str,
        error: Optional[Dict[str, object]], now: float,
    ) -> str:
        item.lease = None
        item.attempts += 1
        item.failed_workers.add(worker)
        if error is not None:
            item.last_error = dict(error)
            item.last_error["attempts"] = item.attempts
            item.last_error["workers"] = sorted(item.failed_workers)
            item.last_error.setdefault(
                "kind",
                classify_failure_kind(str(error.get("error_type") or "")),
            )
        if len(item.failed_workers) >= self.poison_threshold:
            item.state = POISONED
            self.counters["poisoned"] += 1
            return QUARANTINED
        item.state = PENDING
        item.not_before = now + self.backoff.delay(item.attempts)
        self.counters["requeued"] += 1
        return REQUEUED

    def _find_lease_locked(self, lease_id: str) -> Optional[WorkItem]:
        for key in self._order:
            item = self._items[key]
            if (
                item.state is LEASED
                and item.lease is not None
                and item.lease.lease_id == lease_id
            ):
                return item
        return None

    # -- drain / accounting --------------------------------------------
    def pause(self) -> None:
        """Stop granting new leases (drain); in-flight ones stand."""
        with self._lock:
            self.granting = False

    def resume_granting(self) -> None:
        with self._lock:
            self.granting = True

    def active_leases(self) -> int:
        with self._lock:
            return sum(
                1 for item in self._items.values() if item.state is LEASED
            )

    def remaining(self) -> int:
        """Scenarios not yet settled (neither committed nor poisoned)."""
        with self._lock:
            return sum(
                1 for item in self._items.values()
                if item.state in (PENDING, LEASED)
            )

    def error_of(self, key: str) -> Optional[Dict[str, object]]:
        """Last recorded failure detail for a key (poison diagnostics)."""
        with self._lock:
            item = self._items.get(key)
            if item is None or item.last_error is None:
                return None
            return dict(item.last_error)

    def snapshot(self) -> Dict[str, object]:
        """Point-in-time view for ``/status`` and tests."""
        with self._lock:
            states = {PENDING: 0, LEASED: 0, DONE: 0, POISONED: 0}
            for item in self._items.values():
                states[item.state] += 1
            return {
                "total": len(self._items),
                "states": states,
                "granting": self.granting,
                "counters": dict(self.counters),
            }
