"""JSON persistence for experiment artifacts.

Long table runs are worth keeping: this module serializes the harness's
result objects (synthetic/real tables, sweeps, Vth reports) to plain
JSON — versioned, diff-friendly, and loadable without re-simulation —
so EXPERIMENTS.md updates and cross-machine comparisons don't require
re-running anything.

Only *results* round-trip; the heavyweight per-run
:class:`~repro.experiments.runner.ScenarioResult` objects are reduced
to their table-relevant fields.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.experiments.checkpoint import atomic_write_json
from repro.experiments.tables import (
    RealRow,
    RealTable,
    SyntheticRow,
    SyntheticTable,
    VthSavingReport,
    VthSavingRow,
)

#: Format version written into every file (bump on schema changes).
SCHEMA_VERSION = 1

PathLike = Union[str, Path]


class PersistenceError(ValueError):
    """Raised when a file does not contain the expected artifact."""


def _wrap(kind: str, payload: Dict[str, Any]) -> Dict[str, Any]:
    return {"schema": SCHEMA_VERSION, "kind": kind, "payload": payload}


def _unwrap(data: Dict[str, Any], kind: str) -> Dict[str, Any]:
    if not isinstance(data, dict) or "kind" not in data:
        raise PersistenceError("not a repro experiment artifact")
    if data.get("schema") != SCHEMA_VERSION:
        raise PersistenceError(
            f"unsupported schema version {data.get('schema')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    if data["kind"] != kind:
        raise PersistenceError(
            f"expected a {kind!r} artifact, found {data['kind']!r}"
        )
    return data["payload"]


def _dump(path: PathLike, blob: Dict[str, Any]) -> None:
    # Atomic (tmp + fsync + rename): a crash mid-save leaves the old
    # artifact intact instead of a truncated, unloadable file.
    atomic_write_json(path, blob)


def _load(path: PathLike) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    try:
        return json.loads(text)
    except ValueError as exc:
        detail = (
            "file is empty or truncated (crash before atomic writes?)"
            if not text.strip() or _looks_truncated(text)
            else "file is not valid JSON"
        )
        raise PersistenceError(f"{path}: {detail}: {exc}") from exc


def _looks_truncated(text: str) -> bool:
    """Heuristic: valid JSON prefix that stops mid-document."""
    stripped = text.rstrip()
    return stripped.startswith(("{", "[")) and not stripped.endswith(("}", "]"))


# ----------------------------------------------------------------------
# Synthetic tables (Tables II / III)
# ----------------------------------------------------------------------
def save_synthetic_table(table: SyntheticTable, path: PathLike) -> None:
    """Serialize a Table II/III result (per-VC duties and MD ids)."""
    payload = {
        "num_vcs": table.num_vcs,
        "policies": list(table.policies),
        "rows": [
            {"label": row.label, "md_vc": row.md_vc, "duty": row.duty}
            for row in table.rows
        ],
    }
    _dump(path, _wrap("synthetic_table", payload))


def load_synthetic_table(path: PathLike) -> SyntheticTable:
    """Load a table written by :func:`save_synthetic_table`.

    The per-run :class:`ScenarioResult` details are not persisted;
    loaded rows carry an empty ``results`` mapping.
    """
    payload = _unwrap(_load(path), "synthetic_table")
    rows = [
        SyntheticRow(
            label=row["label"],
            md_vc=row["md_vc"],
            duty={k: list(v) for k, v in row["duty"].items()},
            results={},
        )
        for row in payload["rows"]
    ]
    return SyntheticTable(
        num_vcs=payload["num_vcs"],
        policies=tuple(payload["policies"]),
        rows=rows,
    )


# ----------------------------------------------------------------------
# Real-traffic table (Table IV)
# ----------------------------------------------------------------------
def save_real_table(table: RealTable, path: PathLike) -> None:
    """Serialize a Table IV result (avg/std per VC per policy)."""
    payload = {
        "num_vcs": table.num_vcs,
        "iterations": table.iterations,
        "policies": list(table.policies),
        "rows": [
            {
                "label": row.label,
                "num_nodes": row.num_nodes,
                "router": row.router,
                "port": row.port,
                "md_vc": row.md_vc,
                "avg": row.avg,
                "std": row.std,
            }
            for row in table.rows
        ],
    }
    _dump(path, _wrap("real_table", payload))


def load_real_table(path: PathLike) -> RealTable:
    """Load a table written by :func:`save_real_table`."""
    payload = _unwrap(_load(path), "real_table")
    rows = [
        RealRow(
            label=row["label"],
            num_nodes=row["num_nodes"],
            router=row["router"],
            port=row["port"],
            md_vc=row["md_vc"],
            avg={k: list(v) for k, v in row["avg"].items()},
            std={k: list(v) for k, v in row["std"].items()},
        )
        for row in payload["rows"]
    ]
    return RealTable(
        num_vcs=payload["num_vcs"],
        iterations=payload["iterations"],
        policies=tuple(payload["policies"]),
        rows=rows,
    )


# ----------------------------------------------------------------------
# Vth saving report
# ----------------------------------------------------------------------
def save_vth_report(report: VthSavingReport, path: PathLike) -> None:
    """Serialize a Sec. V Vth-saving report."""
    payload = {
        "scenario_label": report.scenario_label,
        "years": report.years,
        "rows": [dataclasses.asdict(row) for row in report.rows],
    }
    _dump(path, _wrap("vth_report", payload))


def load_vth_report(path: PathLike) -> VthSavingReport:
    """Load a report written by :func:`save_vth_report`."""
    payload = _unwrap(_load(path), "vth_report")
    rows = [VthSavingRow(**row) for row in payload["rows"]]
    return VthSavingReport(
        scenario_label=payload["scenario_label"],
        years=payload["years"],
        rows=rows,
    )
