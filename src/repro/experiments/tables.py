"""Builders for every table/figure of the paper's evaluation.

* :func:`run_synthetic_table` — Tables II (4 VCs) and III (2 VCs):
  per-VC NBTI-duty-cycles under the three policies with the Gap column.
* :func:`run_real_table` — Table IV: benchmark-mix traffic, avg/std over
  iterations for rr-no-sensor vs sensor-wise.
* :func:`run_vth_saving` — the Sec. V net-Vth-saving claim (up to
  54.2 % vs the non-NBTI-aware baseline).
* :func:`run_cooperation_gain` — the Sec. V cooperation claim (traffic
  information is worth up to ~23 % duty cycle on the most-degraded VC).

Every builder returns a structured result with a ``format()`` method
that renders the paper-style text table.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.policies import PAPER_POLICIES
from repro.nbti.constants import SECONDS_PER_YEAR
from repro.nbti.model import NBTIModel
from repro.stats.summary import VectorStats
from repro.experiments.config import REAL_TRAFFIC, ScenarioConfig
from repro.experiments.parallel import Executor, execute_units
from repro.experiments.report import pct, pct_pair, render_table
from repro.experiments.runner import ScenarioResult, run_policies

#: Reference (rr) and proposed (sensor-wise) policies used by Gap columns.
REFERENCE_POLICY = "rr-no-sensor"
PROPOSED_POLICY = "sensor-wise"

#: Table IV measurement points: arch -> [(router, port name), ...].
#: The paper lists "16c-r15-E", but on a row-major 4x4 mesh router 15 is
#: the bottom-right corner and has no east neighbor — its east input
#: port does not exist.  The reproduction measures r15's *west* input
#: port instead (documented in EXPERIMENTS.md).
REAL_TRAFFIC_ROWS: Dict[int, Tuple[Tuple[int, str], ...]] = {
    4: ((0, "east"), (1, "west"), (2, "east"), (3, "west")),
    16: ((0, "east"), (5, "east"), (10, "east"), (15, "west")),
}


# ----------------------------------------------------------------------
# Tables II and III — synthetic uniform traffic
# ----------------------------------------------------------------------
@dataclasses.dataclass
class SyntheticRow:
    """One scenario row of Table II/III."""

    label: str
    md_vc: int
    duty: Dict[str, List[float]]  # policy -> per-VC duty cycle (%)
    results: Dict[str, ScenarioResult]

    @property
    def gap(self) -> float:
        """Gap = rr-no-sensor(MD VC) - sensor-wise(MD VC), in % points."""
        return self.duty[REFERENCE_POLICY][self.md_vc] - self.duty[PROPOSED_POLICY][self.md_vc]


@dataclasses.dataclass
class SyntheticTable:
    """Table II (4 VCs) or Table III (2 VCs)."""

    num_vcs: int
    policies: Tuple[str, ...]
    rows: List[SyntheticRow]

    def format(self) -> str:
        headers = ["Scenario", "MD"]
        for policy in self.policies:
            headers.extend(f"{policy}:VC{v}" for v in range(self.num_vcs))
        headers.append("Gap")
        cells = []
        for row in self.rows:
            line = [row.label, str(row.md_vc)]
            for policy in self.policies:
                line.extend(pct(d) for d in row.duty[policy])
            line.append(pct(row.gap))
            cells.append(line)
        title = (
            f"NBTI-duty-cycle (%) per VC, {self.num_vcs} VCs "
            f"(paper Table {'II' if self.num_vcs == 4 else 'III'})"
        )
        return render_table(headers, cells, title=title)

    def gaps(self) -> List[float]:
        return [row.gap for row in self.rows]


def run_synthetic_table(
    num_vcs: int,
    arches: Sequence[int] = (4, 16),
    rates: Sequence[float] = (0.1, 0.2, 0.3),
    policies: Sequence[str] = PAPER_POLICIES,
    cycles: int = 20_000,
    warmup: int = 2_000,
    seed: int = 1,
    scenario_kwargs: Optional[dict] = None,
    executor: Optional[Executor] = None,
) -> SyntheticTable:
    """Regenerate Table II (``num_vcs=4``) or Table III (``num_vcs=2``).

    Every (architecture, rate) pair is simulated once per policy with a
    frozen PV sample and identical traffic across policies.  All
    (architecture, rate, policy) units are independent, so an
    ``executor`` fans the whole table out at once.
    """
    scenario_kwargs = dict(scenario_kwargs or {})
    bases = [
        ScenarioConfig(
            num_nodes=num_nodes,
            num_vcs=num_vcs,
            injection_rate=rate,
            cycles=cycles,
            warmup=warmup,
            seed=seed,
            **scenario_kwargs,
        )
        for num_nodes in arches
        for rate in rates
    ]
    units = [(base.with_policy(policy), 0) for base in bases for policy in policies]
    all_results = execute_units(units, executor)
    rows: List[SyntheticRow] = []
    for row_index, base in enumerate(bases):
        results = {
            policy: all_results[row_index * len(policies) + policy_index]
            for policy_index, policy in enumerate(policies)
        }
        any_result = next(iter(results.values()))
        rows.append(
            SyntheticRow(
                label=base.label,
                md_vc=any_result.md_vc,
                duty={p: r.duty_cycles for p, r in results.items()},
                results=results,
            )
        )
    return SyntheticTable(num_vcs=num_vcs, policies=tuple(policies), rows=rows)


# ----------------------------------------------------------------------
# Table IV — benchmark-mix ("real") traffic
# ----------------------------------------------------------------------
@dataclasses.dataclass
class RealRow:
    """One measurement point of Table IV (a router input port)."""

    label: str
    num_nodes: int
    router: int
    port: str
    md_vc: int
    avg: Dict[str, List[float]]  # policy -> per-VC average duty (%)
    std: Dict[str, List[float]]  # policy -> per-VC std (%)

    @property
    def gap(self) -> float:
        """Average Gap on the most-degraded VC (rr - sensor-wise)."""
        return self.avg[REFERENCE_POLICY][self.md_vc] - self.avg[PROPOSED_POLICY][self.md_vc]

    @property
    def md_std_improved(self) -> bool:
        """Paper's stability claim: sensor-wise std on the MD VC is
        smaller than rr-no-sensor's."""
        return self.std[PROPOSED_POLICY][self.md_vc] <= self.std[REFERENCE_POLICY][self.md_vc]


@dataclasses.dataclass
class RealTable:
    """Table IV: averages over benchmark-mix iterations."""

    num_vcs: int
    iterations: int
    policies: Tuple[str, ...]
    rows: List[RealRow]

    def format(self) -> str:
        headers = ["Scenario", "MD"]
        for policy in self.policies:
            headers.extend(f"{policy}:VC{v} avg(std)" for v in range(self.num_vcs))
        headers.append("Gap")
        cells = []
        for row in self.rows:
            line = [row.label, str(row.md_vc)]
            for policy in self.policies:
                line.extend(
                    pct_pair(a, s)
                    for a, s in zip(row.avg[policy], row.std[policy])
                )
            line.append(pct(row.gap))
            cells.append(line)
        title = (
            f"NBTI-duty-cycle (%) per VC, benchmark mixes, {self.num_vcs} VCs, "
            f"avg over {self.iterations} iterations (paper Table IV)"
        )
        return render_table(headers, cells, title=title)

    def gaps(self) -> List[float]:
        return [row.gap for row in self.rows]


def run_real_table(
    num_vcs: int = 2,
    iterations: int = 10,
    arch_rows: Optional[Dict[int, Tuple[Tuple[int, str], ...]]] = None,
    policies: Sequence[str] = (REFERENCE_POLICY, PROPOSED_POLICY),
    cycles: int = 15_000,
    warmup: int = 2_000,
    seed: int = 1,
    scenario_kwargs: Optional[dict] = None,
    executor: Optional[Executor] = None,
) -> RealTable:
    """Regenerate Table IV.

    For each architecture, each iteration randomly picks a benchmark mix
    (one profile per core); the PV sample — hence the most-degraded VC —
    is constant across the iterations of a scenario, exactly as in the
    paper.  One simulation per (architecture, iteration, policy) covers
    all of that architecture's measurement rows at once; every such unit
    is independent, so an ``executor`` fans out the full table.
    """
    scenario_kwargs = dict(scenario_kwargs or {})
    arch_rows = arch_rows if arch_rows is not None else REAL_TRAFFIC_ROWS
    bases = {
        num_nodes: ScenarioConfig(
            num_nodes=num_nodes,
            num_vcs=num_vcs,
            traffic=REAL_TRAFFIC,
            cycles=cycles,
            warmup=warmup,
            seed=seed,
            **scenario_kwargs,
        )
        for num_nodes in arch_rows
    }
    # (num_nodes, policy, iteration) in deterministic fold order.
    plan = [
        (num_nodes, policy, iteration)
        for num_nodes in arch_rows
        for iteration in range(iterations)
        for policy in policies
    ]
    all_results = execute_units(
        [(bases[n].with_policy(p), it) for n, p, it in plan], executor
    )
    results_by_key = {key: result for key, result in zip(plan, all_results)}
    rows: List[RealRow] = []
    for num_nodes, points in arch_rows.items():
        # (policy, point) -> VectorStats over iterations.
        stats: Dict[Tuple[str, Tuple[int, str]], VectorStats] = {
            (policy, point): VectorStats(num_vcs)
            for policy in policies
            for point in points
        }
        md_at: Dict[Tuple[int, str], int] = {}
        for iteration in range(iterations):
            for policy in policies:
                result = results_by_key[(num_nodes, policy, iteration)]
                for point in points:
                    router, port = point
                    stats[(policy, point)].add(result.duty_at(router, port))
                    md_at[point] = result.md_at(router, port)
        for point in points:
            router, port = point
            rows.append(
                RealRow(
                    label=f"{num_nodes}c-r{router}-{port[0].upper()}",
                    num_nodes=num_nodes,
                    router=router,
                    port=port,
                    md_vc=md_at[point],
                    avg={p: stats[(p, point)].means() for p in policies},
                    std={p: stats[(p, point)].stds() for p in policies},
                )
            )
    return RealTable(
        num_vcs=num_vcs,
        iterations=iterations,
        policies=tuple(policies),
        rows=rows,
    )


# ----------------------------------------------------------------------
# Sec. V — net Vth saving vs the baseline NoC
# ----------------------------------------------------------------------
@dataclasses.dataclass
class VthSavingRow:
    """Vth projection of one policy's most-degraded VC duty cycle."""

    policy: str
    md_duty_percent: float
    delta_vth_mv: float
    saving_vs_baseline: float  # in [0, 1]


@dataclasses.dataclass
class VthSavingReport:
    """Lifetime Vth-shift projection per policy (the 54.2 % claim)."""

    scenario_label: str
    years: float
    rows: List[VthSavingRow]

    def saving_of(self, policy: str) -> float:
        for row in self.rows:
            if row.policy == policy:
                return row.saving_vs_baseline
        raise KeyError(f"no Vth row for policy {policy!r}")

    def format(self) -> str:
        headers = ["Policy", "MD duty", "dVth @ horizon", "Saving vs baseline"]
        cells = [
            [
                row.policy,
                pct(row.md_duty_percent),
                f"{row.delta_vth_mv:.1f} mV",
                pct(100 * row.saving_vs_baseline),
            ]
            for row in self.rows
        ]
        title = (
            f"Net NBTI Vth saving, {self.scenario_label}, most-degraded VC, "
            f"{self.years:g}-year projection (paper Sec. V: up to 54.2%)"
        )
        return render_table(headers, cells, title=title)


def run_vth_saving(
    scenario: ScenarioConfig,
    policies: Sequence[str] = ("baseline",) + tuple(PAPER_POLICIES),
    years: float = 3.0,
    model: Optional[NBTIModel] = None,
    executor: Optional[Executor] = None,
) -> VthSavingReport:
    """Project each policy's measured MD-VC duty cycle over a lifetime.

    The saving is ``1 - dVth(policy) / dVth(baseline)`` with the shifts
    taken from the calibrated long-term model (paper Eq. 1) at the
    measured duty cycles — the paper's extraction method ([7]).
    """
    if years <= 0:
        raise ValueError(f"years must be positive, got {years}")
    model = model if model is not None else NBTIModel.calibrated()
    results = run_policies(scenario, policies, executor=executor)
    horizon = years * SECONDS_PER_YEAR
    if "baseline" in results:
        baseline_alpha = results["baseline"].md_duty / 100.0
    else:
        baseline_alpha = 1.0
    baseline_shift = model.delta_vth(baseline_alpha, horizon)
    rows = []
    for policy in policies:
        duty = results[policy].md_duty
        shift = model.delta_vth(duty / 100.0, horizon)
        saving = 0.0 if baseline_shift == 0.0 else 1.0 - shift / baseline_shift
        rows.append(
            VthSavingRow(
                policy=policy,
                md_duty_percent=duty,
                delta_vth_mv=shift * 1e3,
                saving_vs_baseline=saving,
            )
        )
    return VthSavingReport(scenario_label=scenario.label, years=years, rows=rows)


# ----------------------------------------------------------------------
# Sec. V — cooperation gain (traffic information)
# ----------------------------------------------------------------------
@dataclasses.dataclass
class CooperationReport:
    """Duty-cycle gain of cooperation (upstream traffic information).

    Two views are reported: the paper's headline metric (the
    most-degraded VC, where gains reach ~23 % points) and the whole
    port (mean duty over all VCs).  At light load the non-cooperative
    variant *also* drives the MD VC to ~0 % — it only pays for its
    always-reserved idle VC elsewhere on the port — so the whole-port
    view is the discriminating one there.
    """

    scenario_label: str
    md_vc: int
    md_duty_cooperative: float
    md_duty_non_cooperative: float
    mean_duty_cooperative: float
    mean_duty_non_cooperative: float

    @property
    def gain(self) -> float:
        """Non-cooperative MD duty minus cooperative MD duty (% points).

        Positive values mean cooperation lowered the stress on the
        most-degraded VC; the paper reports up to ~23 %.
        """
        return self.md_duty_non_cooperative - self.md_duty_cooperative

    @property
    def mean_gain(self) -> float:
        """Whole-port mean-duty gain of cooperation (% points)."""
        return self.mean_duty_non_cooperative - self.mean_duty_cooperative

    def format(self) -> str:
        return (
            f"Cooperation gain, {self.scenario_label}, MD VC{self.md_vc}: "
            f"non-cooperative {self.md_duty_non_cooperative:.1f}% -> "
            f"cooperative {self.md_duty_cooperative:.1f}% "
            f"(gain {self.gain:.1f} % points on MD VC, "
            f"{self.mean_gain:.1f} % points port-wide; "
            "paper Sec. V: up to 23%)"
        )


def run_cooperation_gain(
    scenario: ScenarioConfig, executor: Optional[Executor] = None
) -> CooperationReport:
    """Compare sensor-wise with and without upstream traffic information."""
    results = run_policies(
        scenario, ("sensor-wise", "sensor-wise-no-traffic"), executor=executor
    )
    md = results["sensor-wise"].md_vc
    coop = results["sensor-wise"].duty_cycles
    non_coop = results["sensor-wise-no-traffic"].duty_cycles
    return CooperationReport(
        scenario_label=scenario.label,
        md_vc=md,
        md_duty_cooperative=coop[md],
        md_duty_non_cooperative=non_coop[md],
        mean_duty_cooperative=sum(coop) / len(coop),
        mean_duty_non_cooperative=sum(non_coop) / len(non_coop),
    )
