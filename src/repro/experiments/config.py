"""Experiment scenario configuration and the paper's Table I setup.

A :class:`ScenarioConfig` describes one simulated scenario — the
architecture, traffic, policy and measurement point — and derives the
frozen process-variation seed the paper mandates (one Vth sample set per
{architecture, traffic injection} pair, shared by every policy evaluated
on that pair).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from repro.faults.spec import FaultSpec
from repro.nbti.process_variation import scenario_seed
from repro.nbti.regime import StressRegime, get_regime
from repro.noc.config import NoCConfig
from repro.telemetry.config import TelemetryConfig

#: Traffic kind marker for the benchmark-mix ("real") workloads.
REAL_TRAFFIC = "benchmark-mix"


@dataclasses.dataclass(frozen=True)
class ScenarioConfig:
    """One experiment scenario.

    Attributes
    ----------
    num_nodes, num_vcs:
        Architecture: 2D-mesh tile count and VCs per input port.
    injection_rate:
        Offered load in flits/cycle/node (synthetic traffic only).
    policy:
        Recovery policy name (see :data:`repro.core.ALL_POLICIES`).
    traffic:
        Synthetic pattern name (``"uniform"`` for the paper's tables) or
        :data:`REAL_TRAFFIC` for benchmark mixes.
    topology:
        Network topology name resolved by
        :func:`repro.noc.topology.build_topology` (``"mesh"`` — the
        paper's setup — plus ``"torus"`` and ``"ring"``); a design-space
        axis for the DSE engine.
    cycles, warmup:
        Measured cycles and discarded warm-up cycles.  The paper runs
        30e6 cycles with 6-9e6 warm-up on a full-system simulator; the
        synthetic injectors here are stationary, so the defaults are
        scaled down (see DESIGN.md §3) and fully configurable.
    seed:
        Master seed for traffic streams.
    pv_seed:
        Override for the frozen process-variation seed (``None`` derives
        it from the architecture + injection pair, as in the paper).
    rotation_period:
        Candidate rotation period of the round-robin policies.
    measure_router, measure_port:
        The sampled input port; the paper samples "the upper left-most
        router on its east input port" for synthetic traffic.
    faults:
        :class:`~repro.faults.spec.FaultSpec` list injected into the
        built network before the run (empty = fault-free).  Onset cycles
        are absolute (warm-up included).
    validate_every:
        When positive, run :func:`repro.noc.validation.validate_network`
        every N measured cycles and *count* violations in the result
        (unlike ``Network.run``'s raise-on-first debugging mode) — the
        fault campaigns' dependability metric.
    telemetry:
        Opt-in :class:`~repro.telemetry.config.TelemetryConfig` turning
        the run into a traced/metered run (see :meth:`traced`).  ``None``
        (the default) keeps the simulator completely uninstrumented.
    regime:
        Name of the :class:`~repro.nbti.regime.StressRegime` the
        scenario ages under (burn-in pre-stress, joint NBTI+PBTI,
        technology override).  The default, ``"fresh"``, is the
        historical NBTI-only behaviour and is provably a no-op — a
        design-space axis for the DSE engine and the CLI ``--regime``
        flag.
    """

    num_nodes: int = 4
    num_vcs: int = 2
    num_vnets: int = 1
    injection_rate: float = 0.1
    policy: str = "sensor-wise"
    traffic: str = "uniform"
    topology: str = "mesh"
    cycles: int = 20_000
    warmup: int = 2_000
    seed: int = 1
    pv_seed: Optional[int] = None
    rotation_period: int = 64
    measure_router: int = 0
    measure_port: str = "east"
    packet_length: int = 4
    buffer_depth: int = 4
    flit_width_bits: int = 64
    link_latency: int = 1
    wake_latency: int = 1
    sensor_sample_period: int = 1024
    faults: Tuple[FaultSpec, ...] = ()
    validate_every: int = 0
    telemetry: Optional[TelemetryConfig] = None
    regime: str = "fresh"

    def __post_init__(self) -> None:
        get_regime(self.regime)  # fail fast on unknown regime names
        if self.cycles < 1:
            raise ValueError(f"cycles must be >= 1, got {self.cycles}")
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")
        if self.traffic != REAL_TRAFFIC and not 0.0 <= self.injection_rate <= 1.0:
            raise ValueError(f"injection_rate must be in [0, 1], got {self.injection_rate}")
        if self.validate_every < 0:
            raise ValueError(f"validate_every must be >= 0, got {self.validate_every}")
        if not isinstance(self.faults, tuple):
            object.__setattr__(self, "faults", tuple(self.faults))

    @property
    def is_real_traffic(self) -> bool:
        return self.traffic == REAL_TRAFFIC

    @property
    def label(self) -> str:
        """Paper-style scenario label, e.g. ``"4core-inj0.10"``."""
        if self.is_real_traffic:
            return f"{self.num_nodes}core-real"
        return f"{self.num_nodes}core-inj{self.injection_rate:.2f}"

    @property
    def effective_pv_seed(self) -> int:
        """Frozen PV seed: one Vth sample set per {architecture, traffic}.

        Identical for every policy evaluated on the same pair, so the
        most-degraded VC is consistent across compared policies (paper
        Sec. IV-A and IV-C).
        """
        if self.pv_seed is not None:
            return self.pv_seed
        traffic_key = "real" if self.is_real_traffic else self.injection_rate
        return scenario_seed("pv", self.num_nodes, self.num_vcs, traffic_key)

    @property
    def stress_regime(self) -> StressRegime:
        """The resolved :class:`~repro.nbti.regime.StressRegime`."""
        return get_regime(self.regime)

    def noc_config(self) -> NoCConfig:
        """The :class:`NoCConfig` this scenario simulates.

        A regime with a technology override (e.g. ``finfet-pbti``)
        swaps the node here, so the PV sampler, the calibrated models
        and the per-cycle aging time all follow it; the default regime
        builds the exact historical config.
        """
        kwargs = {}
        regime = self.stress_regime
        if regime.technology is not None:
            kwargs["technology"] = regime.resolve_technology(None)
        return NoCConfig(
            num_nodes=self.num_nodes,
            topology=self.topology,
            num_vcs=self.num_vcs,
            num_vnets=self.num_vnets,
            buffer_depth=self.buffer_depth,
            packet_length=self.packet_length,
            flit_width_bits=self.flit_width_bits,
            link_latency=self.link_latency,
            wake_latency=self.wake_latency,
            sensor_sample_period=self.sensor_sample_period,
            seed=self.seed,
            **kwargs,
        )

    def replace(self, **kwargs) -> "ScenarioConfig":
        """Validated copy with the given fields replaced.

        The canonical way to derive one scenario from another (sweeps,
        DSE genome decoding): the copy re-runs ``__post_init__``, so an
        out-of-range override fails here rather than deep inside a
        worker process.
        """
        return dataclasses.replace(self, **kwargs)

    def with_policy(self, policy: str) -> "ScenarioConfig":
        """Same scenario (same traffic, same PV sample), another policy."""
        return self.replace(policy=policy)

    def traced(self, trace_dir: Optional[str] = None, **kwargs) -> "ScenarioConfig":
        """Same scenario as a traced run: one call enables telemetry.

        ``kwargs`` forward to :class:`TelemetryConfig` (e.g. ``formats``,
        ``metrics``, per-subsystem toggles).
        """
        return self.replace(telemetry=TelemetryConfig(trace_dir=trace_dir, **kwargs))


#: The paper's Table I, as (parameter, value) pairs.
EXPERIMENTAL_SETUP: Tuple[Tuple[str, str], ...] = (
    ("Processor core", "1GHz, out-of-order Alpha core (traffic-profile substitute)"),
    ("Int-ALU", "4 integer ALU functional units"),
    ("Int-Mult/Div", "4 integer multiply/divide functional units"),
    ("FP-Mult/Div", "4 floating-point multiply/divide functional units"),
    ("L1 cache", "64kB 2-way set assoc. split I/D, 2 cycles latency"),
    ("L2 cache", "512KB per bank, 8-way associative"),
    ("Coherence Prot.", "MOESI token (request/response profile substitute)"),
    ("Router", "3-stage wormhole switched; 2/4 VCs per input port; 4-flit buffers"),
    ("Topology", "2D-mesh (Tilera-iMesh style), 1GHz"),
    ("Technology", "Vth=0.160 at 32nm and Vth=0.180 at 45nm, Vdd=1.2V"),
)


def format_experimental_setup() -> str:
    """Render the Table I equivalent of this reproduction."""
    width = max(len(k) for k, _ in EXPERIMENTAL_SETUP)
    lines = ["TABLE I — EXPERIMENTAL SETUP (reproduction)"]
    for key, value in EXPERIMENTAL_SETUP:
        lines.append(f"  {key:<{width}} | {value}")
    return "\n".join(lines)
