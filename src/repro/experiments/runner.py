"""Scenario runner: build a network from a scenario, run it, harvest
duty cycles and network statistics.

The runner enforces the paper's consistency rules:

* the process-variation Vth sample is frozen per {architecture,
  traffic} pair (every policy sees the same most-degraded VC), and
* the traffic stream is derived from (scenario seed, iteration) only —
  never from the policy — so policies are compared on identical
  workloads.
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
from typing import Dict, List, Optional, Tuple

from repro.core.policies import make_policy_factory
from repro.nbti.model import NBTIModel
from repro.nbti.process_variation import ProcessVariationModel, scenario_seed
from repro.noc.network import Network, SimStats
from repro.noc.topology import port_id, port_name
from repro.telemetry.runtime import Telemetry, TelemetrySummary
from repro.traffic.real import BenchmarkTraffic
from repro.traffic.synthetic import SyntheticTraffic

from repro.experiments.config import ScenarioConfig


@dataclasses.dataclass
class ScenarioResult:
    """Everything harvested from one scenario run.

    Attributes
    ----------
    scenario:
        The configuration that produced this result.
    iteration:
        Traffic iteration index (benchmark-mix runs use 0..9).
    duty_cycles:
        NBTI-duty-cycles (%) per VC at the measured port.
    md_vc:
        Ground-truth most-degraded VC at the measured port (argmax of
        the PV-sampled initial Vth — constant per scenario, as in the
        paper).
    port_duty:
        Duty cycles for *every* router input port:
        ``(router, port_name) -> [duty per VC]``.
    initial_vths:
        Initial |Vth| per VC at the measured port (volts).
    port_initial_vths:
        Initial |Vth| per VC for every router input port (volts); the
        per-port ground-truth most-degraded VC is its argmax.
    net_stats:
        Latency/throughput aggregate over the measured window.
    build_seconds:
        Host time spent constructing the network (topology wiring, PV
        sampling, traffic setup).
    sim_seconds:
        Host time spent simulating (warm-up + measured cycles).
    violations:
        Total :func:`repro.noc.validation.validate_network` findings over
        the measured window (only collected when the scenario sets
        ``validate_every > 0``; zero otherwise).
    fault_counters:
        :meth:`FaultInjector.counters` aggregate for faulted scenarios;
        ``None`` for fault-free runs.
    telemetry:
        :class:`~repro.telemetry.runtime.TelemetrySummary` of the run
        when the scenario opted in (``scenario.telemetry``); ``None``
        otherwise.
    """

    scenario: ScenarioConfig
    iteration: int
    duty_cycles: List[float]
    md_vc: int
    port_duty: Dict[Tuple[int, str], List[float]]
    initial_vths: List[float]
    port_initial_vths: Dict[Tuple[int, str], List[float]]
    net_stats: SimStats
    build_seconds: float
    sim_seconds: float
    violations: int = 0
    fault_counters: Optional[Dict[str, int]] = None
    telemetry: Optional[TelemetrySummary] = None

    @property
    def wall_seconds(self) -> float:
        """Total host time (construction + simulation)."""
        return self.build_seconds + self.sim_seconds

    @property
    def md_duty(self) -> float:
        """Duty cycle of the most-degraded VC at the measured port."""
        return self.duty_cycles[self.md_vc]

    def duty_at(self, router: int, port: str) -> List[float]:
        """Duty cycles at an arbitrary router input port."""
        return self.port_duty[(router, port)]

    def md_at(self, router: int, port: str) -> int:
        """Ground-truth most-degraded VC at an arbitrary input port.

        Ties break toward the lowest VC index — the same fixed
        priority-encoder rule the sensor banks use, so harvested
        ground truth and sensed verdicts can never diverge on ties.
        """
        vths = self.port_initial_vths[(router, port)]
        return max(range(len(vths)), key=lambda v: (vths[v], -v))


def build_traffic(scenario: ScenarioConfig, iteration: int = 0):
    """Construct the scenario's traffic generator (policy-independent)."""
    traffic_seed = scenario_seed(
        "traffic", scenario.num_nodes, scenario.traffic,
        scenario.injection_rate, scenario.seed, iteration,
    )
    if scenario.is_real_traffic:
        mix_seed = scenario_seed("mix", scenario.num_nodes, scenario.seed, iteration)
        # On multi-vnet platforms, MOESI responses ride their own vnet
        # (protocol-deadlock separation, paper Table I).
        response_vnet = 1 if scenario.num_vnets > 1 else 0
        return BenchmarkTraffic.random(
            scenario.num_nodes,
            mix_seed=mix_seed,
            traffic_seed=traffic_seed,
            response_vnet=response_vnet,
        )
    return SyntheticTraffic(
        scenario.traffic,
        scenario.num_nodes,
        flit_rate=scenario.injection_rate,
        packet_length=scenario.packet_length,
        seed=traffic_seed,
    )


def build_network(
    scenario: ScenarioConfig,
    iteration: int = 0,
    nbti_model: Optional[NBTIModel] = None,
) -> Network:
    """Assemble the network for a scenario (traffic + policy + PV).

    The scenario's stress regime is resolved here: a technology
    override already reached ``config`` via :meth:`ScenarioConfig.noc_config`,
    burn-in pre-stress becomes a constant Vth offset on the PV sampler
    (computed from the same calibrated model the network will age
    under, so sensors and the MD ranking see pre-aged devices), and the
    PBTI companion model is attached to every device.  The default
    ``fresh`` regime takes none of these branches and builds the exact
    historical network.
    """
    config = scenario.noc_config()
    regime = scenario.stress_regime
    pv = ProcessVariationModel.for_technology(
        config.technology, seed=scenario.effective_pv_seed
    )
    if regime.burn_in_years > 0.0:
        aging_model = (
            nbti_model if nbti_model is not None
            else NBTIModel.calibrated(config.technology)
        )
        pv = pv.with_burn_in(regime.burn_in_shift(aging_model))
    factory = make_policy_factory(
        scenario.policy, rotation_period=scenario.rotation_period
    )
    return Network(
        config,
        factory,
        traffic=build_traffic(scenario, iteration),
        nbti_model=nbti_model,
        pv_model=pv,
        pbti_model=regime.pbti_model(config.technology),
    )


def _phase(telemetry: Optional[Telemetry], name: str):
    """A runner-phase span, or a no-op for untraced runs."""
    if telemetry is None:
        return contextlib.nullcontext()
    return telemetry.span(name)


def run_scenario(
    scenario: ScenarioConfig,
    iteration: int = 0,
    nbti_model: Optional[NBTIModel] = None,
) -> ScenarioResult:
    """Run one scenario end to end and collect its measurements."""
    telemetry = None
    if scenario.telemetry is not None:
        telemetry = Telemetry(
            scenario.telemetry,
            run_name=f"{scenario.label}-{scenario.policy}-i{iteration}",
        )
    started = time.perf_counter()
    with _phase(telemetry, "build"):
        network = build_network(scenario, iteration, nbti_model)
        injector = None
        if scenario.faults:
            from repro.faults.injector import FaultInjector

            injector = FaultInjector(scenario.faults, master_seed=scenario.seed)
            injector.apply(network)
        # Instrument before warm-up: the trace must contain every gating
        # transition so the power state at the measurement-window start
        # is derivable by replay (the reconciliation tests rely on it).
        if telemetry is not None:
            telemetry.attach(network)
            if injector is not None:
                telemetry.attach_faults(injector)
    built = time.perf_counter()
    if scenario.warmup:
        with _phase(telemetry, "warmup"):
            network.run(scenario.warmup)
            network.reset_nbti()
            network.reset_stats()
    with _phase(telemetry, "measure"):
        violations = network.run(
            scenario.cycles,
            validate_every=scenario.validate_every,
            raise_on_violation=False,
        )
    simulated = time.perf_counter()

    with _phase(telemetry, "harvest"):
        measured_port = port_id(scenario.measure_port)
        total_vcs = scenario.num_vcs * scenario.num_vnets
        duty = network.duty_cycles(scenario.measure_router, measured_port)
        initial = [
            network.device(scenario.measure_router, measured_port, vc).initial_vth
            for vc in range(total_vcs)
        ]
        # Lowest index on ties: the sensor banks' priority-encoder rule.
        md_vc = max(range(total_vcs), key=lambda v: (initial[v], -v))

        port_duty: Dict[Tuple[int, str], List[float]] = {}
        port_initial: Dict[Tuple[int, str], List[float]] = {}
        for router in network.routers:
            for port in router.input_ports:
                key = (router.router_id, port_name(port))
                port_duty[key] = router.duty_cycles(port)
                port_initial[key] = [
                    network.device(router.router_id, port, vc).initial_vth
                    for vc in range(total_vcs)
                ]
        net_stats = network.stats()

    return ScenarioResult(
        scenario=scenario,
        iteration=iteration,
        duty_cycles=duty,
        md_vc=md_vc,
        port_duty=port_duty,
        initial_vths=initial,
        port_initial_vths=port_initial,
        net_stats=net_stats,
        build_seconds=built - started,
        sim_seconds=simulated - built,
        violations=violations,
        fault_counters=injector.counters() if injector is not None else None,
        telemetry=(
            telemetry.finalize(network, scenario) if telemetry is not None else None
        ),
    )


def run_policies(
    scenario: ScenarioConfig,
    policies,
    iteration: int = 0,
    executor=None,
) -> Dict[str, ScenarioResult]:
    """Run the same scenario under several policies.

    Traffic and PV are identical across policies by construction; only
    the recovery decisions differ (the paper's comparison protocol).
    An :class:`~repro.experiments.parallel.Executor` fans the policies
    out across workers (results are identical to the serial path).
    """
    if executor is not None:
        results = executor.map(
            [(scenario.with_policy(policy), iteration) for policy in policies]
        )
        return dict(zip(policies, results))
    return {
        policy: run_scenario(scenario.with_policy(policy), iteration)
        for policy in policies
    }
