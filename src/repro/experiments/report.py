"""Plain-text table rendering used by the experiment harness."""

from __future__ import annotations

from typing import List, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = "") -> str:
    """Render a fixed-width text table.

    >>> print(render_table(("a", "b"), [("1", "22")], title="T"))
    T
    a | b
    --+---
    1 | 22
    """
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row {row!r} has {len(row)} cells, expected {columns}")
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def pct(value: float, digits: int = 1) -> str:
    """Format a percentage value the way the paper's tables do."""
    return f"{value:.{digits}f}%"


def pct_pair(avg: float, std: float, digits: int = 1) -> str:
    """Format an ``avg(std)`` duty-cycle cell (Table IV style)."""
    return f"{avg:.{digits}f}%({std:.{digits}f})"
