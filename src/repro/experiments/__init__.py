"""Experiment harness: scenarios, runners and the paper's tables."""

from repro.experiments.config import (
    EXPERIMENTAL_SETUP,
    REAL_TRAFFIC,
    ScenarioConfig,
    format_experimental_setup,
)
from repro.experiments.runner import (
    ScenarioResult,
    build_network,
    build_traffic,
    run_policies,
    run_scenario,
)
from repro.experiments.campaign import (
    CampaignConfig,
    CampaignResult,
    run_campaign,
)
from repro.experiments.persistence import (
    PersistenceError,
    load_real_table,
    load_synthetic_table,
    load_vth_report,
    save_real_table,
    save_synthetic_table,
    save_vth_report,
)
from repro.experiments.sweeps import (
    InjectionSweep,
    SweepPoint,
    run_injection_sweep,
)
from repro.experiments.tables import (
    PROPOSED_POLICY,
    REAL_TRAFFIC_ROWS,
    REFERENCE_POLICY,
    CooperationReport,
    RealRow,
    RealTable,
    SyntheticRow,
    SyntheticTable,
    VthSavingReport,
    VthSavingRow,
    run_cooperation_gain,
    run_real_table,
    run_synthetic_table,
    run_vth_saving,
)

__all__ = [
    "EXPERIMENTAL_SETUP",
    "REAL_TRAFFIC",
    "ScenarioConfig",
    "format_experimental_setup",
    "ScenarioResult",
    "build_network",
    "build_traffic",
    "run_policies",
    "run_scenario",
    "PROPOSED_POLICY",
    "REAL_TRAFFIC_ROWS",
    "REFERENCE_POLICY",
    "CooperationReport",
    "RealRow",
    "RealTable",
    "SyntheticRow",
    "SyntheticTable",
    "VthSavingReport",
    "VthSavingRow",
    "run_cooperation_gain",
    "run_real_table",
    "run_synthetic_table",
    "run_vth_saving",
    "InjectionSweep",
    "SweepPoint",
    "run_injection_sweep",
    "CampaignConfig",
    "CampaignResult",
    "run_campaign",
    "PersistenceError",
    "load_real_table",
    "load_synthetic_table",
    "load_vth_report",
    "save_real_table",
    "save_synthetic_table",
    "save_vth_report",
]
