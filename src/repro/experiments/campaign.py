"""One-shot reproduction campaign: regenerate every paper artifact.

``run_campaign`` executes the whole evaluation — Tables I-IV, the area
report, the Vth-saving projection and the cooperation study — at a
configurable cycle budget, optionally persists the table results as
JSON, and renders a single markdown report mirroring EXPERIMENTS.md's
structure.  The CLI exposes it as ``repro-noc campaign``.
"""

from __future__ import annotations

import dataclasses
import time
from pathlib import Path
from typing import Optional, Union

from repro.area import compute_overhead_report
from repro.experiments.checkpoint import (
    CampaignInterrupted,
    CheckpointManager,
    atomic_write_text,
)
from repro.experiments.config import ScenarioConfig, format_experimental_setup
from repro.experiments.governor import BudgetExceeded
from repro.nbti.regime import get_regime
from repro.experiments.parallel import Executor
from repro.experiments.tables import (
    run_cooperation_gain,
    run_real_table,
    run_synthetic_table,
    run_vth_saving,
)


@dataclasses.dataclass
class CampaignConfig:
    """Cycle budgets and scope of a reproduction campaign."""

    cycles: int = 12_000
    warmup: int = 2_000
    iterations: int = 10
    seed: int = 1
    include_real_traffic: bool = True
    regime: str = "fresh"

    def __post_init__(self) -> None:
        get_regime(self.regime)  # fail fast on unknown regime names
        if self.cycles < 1:
            raise ValueError(f"cycles must be >= 1, got {self.cycles}")
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {self.iterations}")


@dataclasses.dataclass
class CampaignResult:
    """Everything a campaign produced, plus the rendered report."""

    config: CampaignConfig
    table2: object
    table3: object
    table4: Optional[object]
    vth_report: object
    cooperation: object
    area_text: str
    wall_seconds: float
    execution_summary: Optional[str] = None

    def to_markdown(self) -> str:
        cfg = self.config
        # Only non-default regimes print themselves: the fresh campaign
        # report must stay byte-identical to the historical renderer.
        regime_note = "" if cfg.regime == "fresh" else f" Stress regime: {cfg.regime}."
        parts = [
            "# Reproduction campaign report",
            "",
            f"Budget: {cfg.cycles} measured cycles (+{cfg.warmup} warm-up), "
            f"{cfg.iterations} benchmark-mix iterations, seed {cfg.seed}."
            f"{regime_note} "
            f"Wall time: {self.wall_seconds:.0f}s.",
            "",
            "## Table I — setup",
            "```",
            format_experimental_setup(),
            "```",
            "## Table II — synthetic, 4 VCs",
            "```",
            self.table2.format(),
            "```",
            f"Gap range: {min(self.table2.gaps()):.1f} - "
            f"{max(self.table2.gaps()):.1f} % points (paper: 11.6 - 26.6).",
            "",
            "## Table III — synthetic, 2 VCs",
            "```",
            self.table3.format(),
            "```",
            f"Gap range: {min(self.table3.gaps()):.1f} - "
            f"{max(self.table3.gaps()):.1f} % points (paper: 7.9 - 13.4).",
            "",
        ]
        if self.table4 is not None:
            positive = sum(r.gap > 0 for r in self.table4.rows)
            stable = sum(r.md_std_improved for r in self.table4.rows)
            parts += [
                "## Table IV — benchmark mixes, 2 VCs",
                "```",
                self.table4.format(),
                "```",
                f"{positive}/{len(self.table4.rows)} positive gaps; "
                f"sensor-wise more stable on {stable}/{len(self.table4.rows)} "
                "ports (paper: 8/8 and 8/8).",
                "",
            ]
        parts += [
            "## Sec. III-D — area overhead",
            "```",
            self.area_text,
            "```",
            "## Sec. V — Vth saving",
            "```",
            self.vth_report.format(),
            "```",
            "## Sec. V — cooperation gain",
            "```",
            self.cooperation.format(),
            "```",
        ]
        if self.execution_summary:
            parts += ["## Execution", "```", self.execution_summary, "```"]
        return "\n".join(parts) + "\n"


def run_campaign(
    config: Optional[CampaignConfig] = None,
    report_path: Optional[Union[str, Path]] = None,
    json_dir: Optional[Union[str, Path]] = None,
    executor: Optional[Executor] = None,
    checkpoint: Optional[CheckpointManager] = None,
) -> CampaignResult:
    """Run the full reproduction and optionally persist its artifacts.

    Parameters
    ----------
    config:
        Cycle budgets (``None`` means fresh defaults: everything
        regenerates in minutes; scale ``cycles`` up for
        closer-to-paper runs).
    report_path:
        When given, the markdown report is written there (atomically).
    json_dir:
        When given, the three tables are additionally saved as JSON via
        :mod:`repro.experiments.persistence`.
    executor:
        Optional :class:`~repro.experiments.parallel.Executor` fanning
        the campaign's independent scenarios across worker processes
        (and/or serving them from its on-disk cache).  Table contents
        are identical to the serial run.
    checkpoint:
        Optional :class:`~repro.experiments.checkpoint.CheckpointManager`
        journaling every completed scenario (crash-safe resume).  When
        ``executor`` is ``None`` a serial executor is built around it so
        journaling works even without ``--jobs``.  On a drain
        (SIGINT/SIGTERM) the campaign writes ``campaign.state.json``
        with status ``interrupted`` and re-raises
        :class:`~repro.experiments.checkpoint.CampaignInterrupted`; on
        success the status is ``complete``.
    """
    config = config if config is not None else CampaignConfig()
    if checkpoint is not None:
        if executor is None:
            executor = Executor(max_workers=1, checkpoint=checkpoint)
        elif executor.checkpoint is None:
            executor.checkpoint = checkpoint
    failures = executor.failure_records if executor is not None else ()
    try:
        result = _run_campaign_body(config, report_path, json_dir, executor)
    except CampaignInterrupted as exc:
        if checkpoint is not None:
            checkpoint.write_state(
                "interrupted", pending=exc.pending, failures=failures
            )
        raise
    except BudgetExceeded as exc:
        # Every other scenario completed and is journaled; the state
        # file names the offenders (typed kind + predicted vs actual
        # cost) so users can re-run with a larger --budget-*.
        if checkpoint is not None:
            checkpoint.write_state(
                "budget-exceeded", pending=len(exc.failures), failures=failures
            )
        raise
    if checkpoint is not None:
        # Artifacts are on disk: the journal's work is done.
        checkpoint.write_state("complete", failures=failures)
    return result


def _run_campaign_body(
    config: CampaignConfig,
    report_path: Optional[Union[str, Path]],
    json_dir: Optional[Union[str, Path]],
    executor: Optional[Executor],
) -> CampaignResult:
    started = time.perf_counter()
    # The stress regime rides into every scenario the campaign builds;
    # the default ("fresh") keeps all artifacts byte-identical.
    regime_kwargs = {"regime": config.regime}
    table2 = run_synthetic_table(
        num_vcs=4, cycles=config.cycles, warmup=config.warmup, seed=config.seed,
        executor=executor, scenario_kwargs=regime_kwargs,
    )
    table3 = run_synthetic_table(
        num_vcs=2, cycles=config.cycles, warmup=config.warmup, seed=config.seed,
        executor=executor, scenario_kwargs=regime_kwargs,
    )
    table4 = None
    if config.include_real_traffic:
        table4 = run_real_table(
            num_vcs=2,
            iterations=config.iterations,
            cycles=config.cycles,
            warmup=config.warmup,
            seed=config.seed,
            executor=executor,
            scenario_kwargs=regime_kwargs,
        )
    vth_scenario = ScenarioConfig(
        num_nodes=4, num_vcs=4, injection_rate=0.3,
        cycles=config.cycles, warmup=config.warmup, seed=config.seed,
        regime=config.regime,
    )
    vth_report = run_vth_saving(vth_scenario, executor=executor)
    coop_scenario = ScenarioConfig(
        num_nodes=4, num_vcs=2, injection_rate=0.3,
        cycles=config.cycles, warmup=config.warmup, seed=config.seed,
        regime=config.regime,
    )
    cooperation = run_cooperation_gain(coop_scenario, executor=executor)
    area_text = compute_overhead_report().as_text()
    result = CampaignResult(
        config=config,
        table2=table2,
        table3=table3,
        table4=table4,
        vth_report=vth_report,
        cooperation=cooperation,
        area_text=area_text,
        wall_seconds=time.perf_counter() - started,
        execution_summary=executor.summary() if executor is not None else None,
    )
    if json_dir is not None:
        from repro.experiments.persistence import (
            save_real_table,
            save_synthetic_table,
            save_vth_report,
        )

        json_dir = Path(json_dir)
        json_dir.mkdir(parents=True, exist_ok=True)
        save_synthetic_table(table2, json_dir / "table2.json")
        save_synthetic_table(table3, json_dir / "table3.json")
        if table4 is not None:
            save_real_table(table4, json_dir / "table4.json")
        save_vth_report(vth_report, json_dir / "vth_saving.json")
    if report_path is not None:
        atomic_write_text(report_path, result.to_markdown())
    return result
