"""Crash-safe campaign state: scenario journal, atomic writes, shutdown.

Long campaigns die — OOM kills, Ctrl-C, batch-queue preemption — and
before this module a crash lost every finished scenario not yet folded
into the final JSON.  Three cooperating pieces make campaigns durable:

* :func:`atomic_write_json` / :func:`atomic_write_text` — the only
  sanctioned way to write an artifact: temp file in the destination
  directory, flush + ``fsync``, then ``os.replace``.  A crash at any
  instant leaves either the old file or the new file, never a
  truncated hybrid.
* :class:`ScenarioJournal` — a write-ahead, append-only JSONL log.
  One fsync'd record per completed
  :class:`~repro.experiments.runner.ScenarioResult`, keyed by the same
  scenario hash the result cache uses, with a per-record CRC-32.  The
  first line is a header carrying the cache schema version, the code
  version and a digest of the campaign configuration, so a journal can
  never silently feed a *different* campaign.  Replay skips and counts
  torn or CRC-failed records (a ``SIGKILL`` mid-append tears at most
  the tail line) instead of aborting.
* :class:`CheckpointManager` — owns one journal plus the
  ``campaign.state.json`` summary (done/pending/failed counts and
  per-failure tracebacks), and is what
  :class:`~repro.experiments.parallel.Executor` consults before
  dispatching a unit and notifies after finishing one.

Resume contract: replayed results are the pickled originals, so a
campaign resumed with ``--resume <dir>`` produces output **byte
identical** to an uninterrupted run — the same bar PR 1 set for
serial vs parallel execution (``tests/test_kill_resume.py``).

Graceful shutdown: :func:`graceful_shutdown` installs SIGINT/SIGTERM
handlers that *drain* — stop dispatching new units, let in-flight
workers finish (still bounded by the per-unit timeout), flush the
journal, write the state summary — and exit with
:data:`EXIT_INTERRUPTED`.  A second signal hard-cancels.
"""

from __future__ import annotations

import base64
import contextlib
import dataclasses
import hashlib
import json
import os
import pickle
import signal
import tempfile
import zlib
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Union

from repro.version import __version__
from repro.telemetry.log import get_logger
from repro.experiments.runner import ScenarioResult

log = get_logger("checkpoint")

PathLike = Union[str, Path]

#: Journal file-format version (bump on incompatible layout changes).
JOURNAL_SCHEMA_VERSION = 1

#: Exit code of a campaign that drained cleanly after SIGINT/SIGTERM:
#: the journal is flushed and the run is resumable (EX_TEMPFAIL — "try
#: again later").  Distinct from 130 (hard cancel on a second signal).
EXIT_INTERRUPTED = 75

#: Exit code after a second signal forced a hard cancel (128 + SIGINT).
EXIT_HARD_CANCEL = 130


class CheckpointError(RuntimeError):
    """A checkpoint directory cannot serve the requested campaign."""


class CampaignInterrupted(RuntimeError):
    """Raised by a draining executor once in-flight units have finished.

    ``pending`` counts the units that were *not* dispatched; everything
    that completed before the drain is already journaled, so resuming
    re-runs only the pending remainder.
    """

    def __init__(self, pending: int, message: str = "") -> None:
        self.pending = pending
        super().__init__(
            message or f"drained with {pending} scenario(s) not dispatched"
        )


# ----------------------------------------------------------------------
# Atomic artifact writes
# ----------------------------------------------------------------------
def _fsync_directory(directory: Path) -> None:
    """Best-effort directory fsync so the rename itself is durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: PathLike, text: str, encoding: str = "utf-8") -> None:
    """Durably replace ``path`` with ``text`` (tmp + fsync + rename).

    The temp file lives in the destination directory so the final
    ``os.replace`` never crosses a filesystem boundary; a crash at any
    point leaves the previous file contents intact.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding, newline="") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_directory(path.parent)


def atomic_write_json(
    path: PathLike, blob: Any, indent: Optional[int] = 2, sort_keys: bool = True
) -> None:
    """Durably replace ``path`` with ``blob`` rendered as JSON.

    Byte-compatible with the historical ``json.dump(..., indent=2,
    sort_keys=True)`` + trailing newline format, so adopting it does
    not move any golden file.
    """
    atomic_write_text(path, json.dumps(blob, indent=indent, sort_keys=sort_keys) + "\n")


# ----------------------------------------------------------------------
# Scenario journal
# ----------------------------------------------------------------------
def config_digest(meta: Dict[str, Any]) -> str:
    """Stable digest of a campaign description + schema/code versions.

    Two runs share a journal only when this digest matches: same
    campaign parameters, same cache schema, same package version —
    the exact conditions under which a scenario hash means the same
    simulation.
    """
    from repro.experiments.parallel import CACHE_SCHEMA_VERSION

    payload = {
        "cache_schema": CACHE_SCHEMA_VERSION,
        "code_version": __version__,
        "journal_schema": JOURNAL_SCHEMA_VERSION,
        "meta": meta,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ScenarioJournal:
    """Append-only write-ahead log of completed scenario results.

    Line 1 is a header record; every further line is one result record
    ``{"type": "result", "key": <scenario-hash>, "crc": <crc32>,
    "payload": <base64 pickle>}`` written with ``flush`` + ``fsync``
    before the writer moves on — the *write-ahead* property: a result
    is durable before the campaign acts on it.

    :meth:`replay` tolerates torn tails: any line that fails JSON
    parsing, base64 decoding, the CRC check or unpickling is counted
    in :attr:`torn` and skipped, never fatal.  A mismatched *header*
    is fatal (:class:`CheckpointError`) — silently mixing results from
    a different campaign or code version would be corruption, not
    robustness.
    """

    FILENAME = "scenario.journal.jsonl"

    def __init__(self, path: PathLike, meta: Optional[Dict[str, Any]] = None) -> None:
        self.path = Path(path)
        self.meta = dict(meta or {})
        self.digest = config_digest(self.meta)
        self.results: Dict[str, ScenarioResult] = {}
        #: Valid records recovered by replay at open time.
        self.replayed = 0
        #: Torn/CRC-failed/undecodable records skipped by replay.
        self.torn = 0
        #: Records appended by this process.
        self.appended = 0
        self._fh = self._open()

    # -- opening / replay ---------------------------------------------
    def _header_record(self) -> Dict[str, Any]:
        from repro.experiments.parallel import CACHE_SCHEMA_VERSION

        return {
            "type": "header",
            "journal_schema": JOURNAL_SCHEMA_VERSION,
            "cache_schema": CACHE_SCHEMA_VERSION,
            "code_version": __version__,
            "config_digest": self.digest,
            "meta": self.meta,
        }

    def _open(self):
        if self.path.exists() and self.path.stat().st_size > 0:
            header_ok = self._replay()
            if header_ok:
                fh = open(self.path, "r+", encoding="utf-8")
                fh.seek(0, os.SEEK_END)
                # A SIGKILL mid-append can leave the tail line without
                # its newline; terminate it so the next append starts a
                # fresh record instead of garbling itself onto the tear.
                if self._missing_trailing_newline():
                    fh.write("\n")
                    fh.flush()
                    os.fsync(fh.fileno())
                return fh
            # Unreadable header: nothing recoverable, restart the log.
            log.warning(
                "journal %s has an unreadable header; starting it fresh", self.path
            )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fh = open(self.path, "w", encoding="utf-8")
        fh.write(_dump_record(self._header_record()))
        fh.flush()
        os.fsync(fh.fileno())
        _fsync_directory(self.path.parent)
        return fh

    def _missing_trailing_newline(self) -> bool:
        with open(self.path, "rb") as fh:
            fh.seek(-1, os.SEEK_END)
            return fh.read(1) != b"\n"

    def _check_header(self, record: Dict[str, Any]) -> None:
        """Refuse to serve a journal written for a different campaign."""
        if record.get("config_digest") == self.digest:
            return
        from repro.experiments.parallel import CACHE_SCHEMA_VERSION

        details = []
        if record.get("journal_schema") != JOURNAL_SCHEMA_VERSION:
            details.append(
                f"journal schema {record.get('journal_schema')!r} != "
                f"{JOURNAL_SCHEMA_VERSION}"
            )
        if record.get("cache_schema") != CACHE_SCHEMA_VERSION:
            details.append(
                f"cache schema {record.get('cache_schema')!r} != "
                f"{CACHE_SCHEMA_VERSION}"
            )
        if record.get("code_version") != __version__:
            details.append(
                f"code version {record.get('code_version')!r} != {__version__!r}"
            )
        if record.get("meta") != self.meta:
            details.append("campaign configuration differs")
        raise CheckpointError(
            f"journal {self.path} belongs to a different campaign "
            f"({'; '.join(details) or 'config digest mismatch'}); "
            "use a fresh --checkpoint-dir or resume with the original "
            "configuration"
        )

    def _replay(self) -> bool:
        """Load every valid record; return False on an unreadable header."""
        with open(self.path, "r", encoding="utf-8") as fh:
            first = True
            for line in fh:
                line = line.strip()
                if first:
                    first = False
                    try:
                        header = json.loads(line)
                    except ValueError:
                        return False
                    if not isinstance(header, dict) or header.get("type") != "header":
                        return False
                    self._check_header(header)
                    continue
                if not line:
                    continue
                result = _decode_record(line)
                if result is None:
                    self.torn += 1
                    continue
                key, value = result
                self.results[key] = value
                self.replayed += 1
        return True

    # -- appending -----------------------------------------------------
    def append(self, key: str, result: ScenarioResult) -> None:
        """Durably journal one completed result (idempotent per key)."""
        if key in self.results:
            return
        blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        record = {
            "type": "result",
            "key": key,
            "crc": zlib.crc32(blob) & 0xFFFFFFFF,
            "payload": base64.b64encode(blob).decode("ascii"),
        }
        self._fh.write(_dump_record(record))
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.results[key] = result
        self.appended += 1

    def get(self, key: str) -> Optional[ScenarioResult]:
        return self.results.get(key)

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()

    def __len__(self) -> int:
        return len(self.results)


@dataclasses.dataclass
class JournalVerifyReport:
    """Outcome of :func:`verify_journal` (``cache verify --checkpoint-dir``).

    ``torn`` carries one ``"line N: reason"`` entry per unreadable
    record; ``torn_tail`` is true when the damage is confined to the
    final line (the signature of a SIGKILL mid-append — recoverable,
    but still rot worth knowing about before a week-long resume).
    """

    path: Path
    header_ok: bool
    header_error: Optional[str]
    total: int
    ok: int
    torn: List[str]
    missing_final_newline: bool

    @property
    def torn_tail(self) -> bool:
        if not self.torn:
            return self.missing_final_newline
        last_line = 1 + self.total  # header + result lines
        return len(self.torn) == 1 and self.torn[0].startswith(f"line {last_line}:")

    @property
    def clean(self) -> bool:
        return self.header_ok and not self.torn and not self.missing_final_newline

    def summary(self) -> str:
        if not self.header_ok:
            return f"{self.path}: unreadable header ({self.header_error})"
        line = f"{self.path}: {self.ok}/{self.total} records valid"
        if self.torn:
            kind = "torn tail" if self.torn_tail else f"{len(self.torn)} torn record(s)"
            line += f", {kind}"
        if self.missing_final_newline:
            line += ", missing final newline"
        return line


def _record_error(line: str) -> str:
    """Why a journal line failed :func:`_decode_record` (verify detail)."""
    try:
        record = json.loads(line)
    except ValueError:
        return "not valid JSON (torn write)"
    if not isinstance(record, dict) or record.get("type") != "result":
        return f"not a result record (type={record.get('type') if isinstance(record, dict) else None!r})"
    key, crc, payload = record.get("key"), record.get("crc"), record.get("payload")
    if not isinstance(key, str) or not isinstance(crc, int) or not isinstance(payload, str):
        return "malformed record fields"
    try:
        blob = base64.b64decode(payload.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError):
        return "payload is not valid base64"
    if zlib.crc32(blob) & 0xFFFFFFFF != crc:
        return "CRC mismatch"
    try:
        result = pickle.loads(blob)
    except Exception:  # noqa: BLE001 - arbitrary bytes fail arbitrarily
        return "payload does not unpickle"
    if not isinstance(result, ScenarioResult):
        return f"payload is a {type(result).__name__}, not a ScenarioResult"
    return "undiagnosed"


def verify_journal(path: PathLike) -> JournalVerifyReport:
    """Scan one scenario journal: header shape + per-record CRC.

    Structural verification only — the header digest is checked for
    *presence and shape*, not recomputed against the current code
    version (an old journal is valid history, not rot; resume-time
    compatibility gating is :class:`ScenarioJournal`'s job).  Exit-1
    rot, by contrast, is anything replay would silently skip: torn
    tails, CRC failures, undecodable records.

    ``path`` may be the journal file itself or a checkpoint directory
    (resolved via :attr:`ScenarioJournal.FILENAME`).
    """
    path = Path(path)
    if path.is_dir():
        path = path / ScenarioJournal.FILENAME
    if not path.exists():
        raise CheckpointError(f"no scenario journal at {path}")
    with open(path, "rb") as fh:
        raw = fh.read()
    missing_newline = bool(raw) and not raw.endswith(b"\n")
    lines = raw.decode("utf-8", errors="replace").splitlines()
    if not lines:
        return JournalVerifyReport(
            path=path, header_ok=False, header_error="empty file",
            total=0, ok=0, torn=[], missing_final_newline=False,
        )
    header_ok, header_error = True, None
    try:
        header = json.loads(lines[0])
        if not isinstance(header, dict) or header.get("type") != "header":
            header_ok, header_error = False, "first line is not a header record"
        elif not isinstance(header.get("config_digest"), str) or len(
            header["config_digest"]
        ) != 64:
            header_ok, header_error = False, "header carries no config digest"
        elif not isinstance(header.get("journal_schema"), int):
            header_ok, header_error = False, "header carries no journal schema"
    except ValueError:
        header_ok, header_error = False, "first line is not valid JSON"
    total = ok = 0
    torn: List[str] = []
    for number, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        total += 1
        if _decode_record(line) is not None:
            ok += 1
        else:
            torn.append(f"line {number}: {_record_error(line)}")
    return JournalVerifyReport(
        path=path, header_ok=header_ok, header_error=header_error,
        total=total, ok=ok, torn=torn,
        missing_final_newline=missing_newline,
    )


#: Bounds applied to worker tracebacks persisted in failure records, so
#: a crash-looping worker cannot balloon ``campaign.state.json``.
TRACEBACK_MAX_FRAMES = 30
TRACEBACK_MAX_BYTES = 8192


def bound_traceback(
    text: Optional[str],
    max_frames: int = TRACEBACK_MAX_FRAMES,
    max_bytes: int = TRACEBACK_MAX_BYTES,
) -> Optional[str]:
    """Clamp a formatted traceback to its most recent frames and a
    byte budget (the frames nearest the raise are the diagnostic ones).
    """
    if text is None:
        return None
    lines = text.splitlines()
    frame_starts = [
        index for index, line in enumerate(lines)
        if line.lstrip().startswith("File ")
    ]
    if len(frame_starts) > max_frames:
        keep_from = frame_starts[len(frame_starts) - max_frames]
        head = lines[:1] if lines and not lines[0].lstrip().startswith("File ") else []
        elided = len(frame_starts) - max_frames
        lines = head + [f"... {elided} frame(s) elided ..."] + lines[keep_from:]
    clamped = "\n".join(lines)
    if text.endswith("\n"):
        clamped += "\n"
    encoded = clamped.encode("utf-8")
    if len(encoded) > max_bytes:
        marker = "... truncated ...\n"
        budget = max_bytes - len(marker.encode("utf-8"))
        tail = encoded[-budget:].decode("utf-8", errors="ignore")
        newline = tail.find("\n")
        if 0 <= newline < len(tail) - 1:
            tail = tail[newline + 1:]
        clamped = marker + tail
    return clamped


def _dump_record(record: Dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"


def _decode_record(line: str):
    """``(key, result)`` for a valid result record, else ``None``."""
    try:
        record = json.loads(line)
    except ValueError:
        return None
    if not isinstance(record, dict) or record.get("type") != "result":
        return None
    key = record.get("key")
    crc = record.get("crc")
    payload = record.get("payload")
    if not isinstance(key, str) or not isinstance(crc, int) or not isinstance(payload, str):
        return None
    try:
        blob = base64.b64decode(payload.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError):
        return None
    if zlib.crc32(blob) & 0xFFFFFFFF != crc:
        return None
    try:
        result = pickle.loads(blob)
    except Exception:  # noqa: BLE001 - any unpickling failure is a torn record
        return None
    if not isinstance(result, ScenarioResult):
        return None
    return key, result


# ----------------------------------------------------------------------
# Checkpoint manager
# ----------------------------------------------------------------------
class CheckpointManager:
    """One campaign's durable state: journal + ``campaign.state.json``.

    The manager is what gets threaded through the harness:
    :class:`~repro.experiments.parallel.Executor` calls :meth:`lookup`
    before dispatching a unit and :meth:`record` the moment one
    completes; campaign drivers call :meth:`write_state` on completion
    and on drain.  ``meta`` describes the campaign (command + config);
    its digest gates resume compatibility (see :class:`ScenarioJournal`).
    """

    STATE_FILENAME = "campaign.state.json"

    def __init__(self, directory: PathLike, meta: Optional[Dict[str, Any]] = None) -> None:
        self.directory = Path(directory)
        if self.directory.exists() and not self.directory.is_dir():
            raise CheckpointError(
                f"checkpoint path exists and is not a directory: {self.directory}"
            )
        self.directory.mkdir(parents=True, exist_ok=True)
        self.meta = dict(meta or {})
        self.journal = ScenarioJournal(
            self.directory / ScenarioJournal.FILENAME, meta=self.meta
        )
        if self.journal.replayed or self.journal.torn:
            log.info(
                "journal replay: %d result(s) recovered, %d torn record(s) skipped",
                self.journal.replayed, self.journal.torn,
            )

    # -- passthrough hot path ------------------------------------------
    @property
    def digest(self) -> str:
        return self.journal.digest

    @property
    def state_path(self) -> Path:
        return self.directory / self.STATE_FILENAME

    def lookup(self, key: str) -> Optional[ScenarioResult]:
        """The journaled result for a scenario hash, or ``None``."""
        return self.journal.get(key)

    def record(self, key: str, result: ScenarioResult) -> None:
        """Durably journal one completed result before it is consumed."""
        self.journal.append(key, result)

    def counters(self) -> Dict[str, int]:
        return {
            "replayed": self.journal.replayed,
            "torn": self.journal.torn,
            "appended": self.journal.appended,
        }

    def completed(self) -> int:
        return len(self.journal)

    # -- state summary -------------------------------------------------
    def write_state(
        self, status: str, pending: int = 0, failures: Iterable[object] = ()
    ) -> None:
        """Atomically publish the done/pending/failed summary.

        ``failures`` accepts
        :class:`~repro.experiments.parallel.ScenarioFailure` records
        (duck-typed), whose full tracebacks survive into the file so a
        dead campaign can be diagnosed without re-running it.
        """
        blob = {
            "status": status,
            "done": self.completed(),
            "pending": int(pending),
            "failed": [_failure_to_dict(failure) for failure in failures],
            "journal": self.counters(),
            "config_digest": self.digest,
            "code_version": __version__,
            "meta": self.meta,
        }
        atomic_write_json(self.state_path, blob)

    def close(self) -> None:
        self.journal.close()

    # -- resume helpers ------------------------------------------------
    @classmethod
    def load_meta(cls, directory: PathLike) -> Dict[str, Any]:
        """The campaign description stored in a checkpoint directory.

        Lets ``--resume <dir>`` re-derive the original configuration
        instead of trusting the user to retype every flag.
        """
        path = Path(directory) / ScenarioJournal.FILENAME
        try:
            with open(path, "r", encoding="utf-8") as fh:
                header = json.loads(fh.readline())
        except FileNotFoundError:
            raise CheckpointError(
                f"no scenario journal in {directory}; nothing to resume"
            ) from None
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                f"cannot read journal header in {directory}: {exc}"
            ) from exc
        if not isinstance(header, dict) or header.get("type") != "header":
            raise CheckpointError(
                f"{path} is not a scenario journal (bad header)"
            )
        meta = header.get("meta")
        if not isinstance(meta, dict):
            raise CheckpointError(f"{path} header carries no campaign meta")
        return meta


def _failure_to_dict(failure: object) -> Dict[str, Any]:
    scenario = getattr(failure, "scenario", None)
    return {
        "label": getattr(scenario, "label", str(scenario)),
        "policy": getattr(scenario, "policy", None),
        "iteration": getattr(failure, "iteration", None),
        "error_type": getattr(failure, "error_type", None),
        "message": getattr(failure, "message", str(failure)),
        "attempts": getattr(failure, "attempts", None),
        "timed_out": getattr(failure, "timed_out", None),
        # Typed failure kind (timeout/cpu/oom/crash) and governor
        # verdicts, so resource-budget casualties are distinguishable
        # from plain crashes without reading tracebacks.
        "kind": getattr(failure, "kind", None),
        "quarantined": bool(getattr(failure, "quarantined", False)),
        "budget": getattr(failure, "budget", None),
        # Bounded: a crash-looping worker must not balloon the state file.
        "traceback": bound_traceback(getattr(failure, "traceback", None)),
    }


# ----------------------------------------------------------------------
# Graceful shutdown
# ----------------------------------------------------------------------
@contextlib.contextmanager
def graceful_shutdown(
    executor, notify: Optional[Callable[[str], None]] = None
) -> Iterator[None]:
    """Install drain-on-signal handlers around a campaign body.

    First SIGINT/SIGTERM: ``executor.request_drain()`` — no new units
    are dispatched, in-flight workers finish (bounded by the per-unit
    timeout), the journal is flushed, and the campaign raises
    :class:`CampaignInterrupted` for the caller to exit with
    :data:`EXIT_INTERRUPTED`.  A second signal raises
    ``KeyboardInterrupt`` immediately (hard cancel).

    No-op when ``executor`` is ``None`` or when not running in the
    main thread (signal handlers cannot be installed there).
    """
    if executor is None:
        yield
        return
    seen = {"count": 0}

    def _handler(signum, frame):  # noqa: ARG001 - signal handler signature
        seen["count"] += 1
        name = signal.Signals(signum).name
        if seen["count"] == 1:
            executor.request_drain()
            if notify is not None:
                notify(
                    f"received {name}: draining — in-flight scenarios finish "
                    "and the journal is flushed; signal again to hard-cancel"
                )
        else:
            raise KeyboardInterrupt(f"hard cancel ({name} x{seen['count']})")

    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, _handler)
        except (ValueError, OSError):  # non-main thread / unsupported platform
            pass
    try:
        yield
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)
