"""Parameter sweeps: figure-style data series with CSV export.

The paper reports point tables; reviewers (and this reproduction's E8
trend checks) want the *curves* behind them.  :func:`run_injection_sweep`
produces, for a list of offered loads, the per-policy most-degraded-VC
duty cycle, the Gap against the reference policy, and the network
latency/throughput — ready to plot or to dump as CSV.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.experiments.checkpoint import CheckpointManager, atomic_write_text
from repro.experiments.config import ScenarioConfig
from repro.experiments.parallel import Executor, execute_units
from repro.experiments.report import render_table
from repro.experiments.runner import ScenarioResult
from repro.experiments.tables import PROPOSED_POLICY, REFERENCE_POLICY


@dataclasses.dataclass
class SweepPoint:
    """All measurements at one injection rate."""

    injection_rate: float
    md_vc: int
    results: Dict[str, ScenarioResult]

    def md_duty(self, policy: str) -> float:
        return self.results[policy].duty_cycles[self.md_vc]

    def latency(self, policy: str) -> float:
        return self.results[policy].net_stats.avg_packet_latency

    def throughput(self, policy: str) -> float:
        return self.results[policy].net_stats.throughput_flits_per_node_cycle

    @property
    def gap(self) -> Optional[float]:
        """Reference-vs-proposed Gap, when both policies were swept."""
        if REFERENCE_POLICY not in self.results or PROPOSED_POLICY not in self.results:
            return None
        return self.md_duty(REFERENCE_POLICY) - self.md_duty(PROPOSED_POLICY)


@dataclasses.dataclass
class InjectionSweep:
    """A swept load axis with per-policy series."""

    scenario: ScenarioConfig
    policies: Sequence[str]
    points: List[SweepPoint]

    def series(self, policy: str, metric: str = "md_duty") -> List[float]:
        """One policy's series along the load axis.

        ``metric`` is ``"md_duty"``, ``"latency"`` or ``"throughput"``.
        """
        getter = {
            "md_duty": SweepPoint.md_duty,
            "latency": SweepPoint.latency,
            "throughput": SweepPoint.throughput,
        }[metric]
        return [getter(point, policy) for point in self.points]

    def rates(self) -> List[float]:
        return [p.injection_rate for p in self.points]

    def gaps(self) -> List[Optional[float]]:
        return [p.gap for p in self.points]

    def format(self) -> str:
        headers = ["rate", "MD"]
        for policy in self.policies:
            headers.append(f"{policy}:MD duty")
        for policy in self.policies:
            headers.append(f"{policy}:lat")
        if all(g is not None for g in self.gaps()):
            headers.append("Gap")
        rows = []
        for point in self.points:
            row = [f"{point.injection_rate:.2f}", str(point.md_vc)]
            row.extend(f"{point.md_duty(p):.1f}%" for p in self.policies)
            row.extend(f"{point.latency(p):.1f}" for p in self.policies)
            if point.gap is not None:
                row.append(f"{point.gap:.1f}%")
            rows.append(row)
        title = (
            f"Injection sweep: {self.scenario.num_nodes}-core, "
            f"{self.scenario.num_vcs} VCs, {self.scenario.traffic} traffic"
        )
        return render_table(headers, rows, title=title)

    def to_csv(self, path: Union[str, Path]) -> None:
        """Write the sweep as a CSV (one row per rate; atomic replace)."""
        columns = ["injection_rate", "md_vc"]
        for policy in self.policies:
            columns.extend(
                [f"{policy}.md_duty", f"{policy}.latency", f"{policy}.throughput"]
            )
        columns.append("gap")
        lines = [",".join(columns)]
        for point in self.points:
            cells = [f"{point.injection_rate}", f"{point.md_vc}"]
            for policy in self.policies:
                cells.extend(
                    [
                        f"{point.md_duty(policy)}",
                        f"{point.latency(policy)}",
                        f"{point.throughput(policy)}",
                    ]
                )
            cells.append("" if point.gap is None else f"{point.gap}")
            lines.append(",".join(cells))
        atomic_write_text(path, "\n".join(lines) + "\n")


def run_injection_sweep(
    rates: Sequence[float],
    policies: Sequence[str] = (REFERENCE_POLICY, PROPOSED_POLICY),
    base: Optional[ScenarioConfig] = None,
    executor: Optional[Executor] = None,
    checkpoint: Optional[CheckpointManager] = None,
    **scenario_kwargs,
) -> InjectionSweep:
    """Sweep offered load, running every policy at each point.

    Parameters
    ----------
    rates:
        Offered loads in flits/cycle/node, in plot order.
    policies:
        Policies evaluated at each point (reference + proposed default).
    base:
        Base scenario; ``scenario_kwargs`` override its fields.
    executor:
        Optional :class:`~repro.experiments.parallel.Executor`; all
        (rate, policy) points are independent and fan out at once.
    checkpoint:
        Optional :class:`~repro.experiments.checkpoint.CheckpointManager`
        journaling each completed point (crash-safe resume); wraps the
        executor (building a serial one when none was given).
    """
    if not rates:
        raise ValueError("sweep needs at least one rate")
    if checkpoint is not None:
        if executor is None:
            executor = Executor(max_workers=1, checkpoint=checkpoint)
        elif executor.checkpoint is None:
            executor.checkpoint = checkpoint
    base = base if base is not None else ScenarioConfig()
    if scenario_kwargs:
        base = base.replace(**scenario_kwargs)
    units = [
        (base.replace(injection_rate=rate, policy=policy), 0)
        for rate in rates
        for policy in policies
    ]
    all_results = execute_units(units, executor)
    points: List[SweepPoint] = []
    for rate_index, rate in enumerate(rates):
        results = {
            policy: all_results[rate_index * len(policies) + policy_index]
            for policy_index, policy in enumerate(policies)
        }
        md = next(iter(results.values())).md_vc
        points.append(SweepPoint(injection_rate=rate, md_vc=md, results=results))
    return InjectionSweep(scenario=base, policies=tuple(policies), points=points)
