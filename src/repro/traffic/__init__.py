"""Traffic generation: synthetic patterns, benchmark profiles, traces."""

from repro.traffic.base import (
    CompositeTraffic,
    Injection,
    NullTraffic,
    TrafficGenerator,
    grid_shape,
)
from repro.traffic.benchmarks import (
    ALL_PROFILES,
    SPLASH2_PROFILES,
    WCET_PROFILES,
    BenchmarkProfile,
    get_profile,
    random_mix,
)
from repro.traffic.real import BenchmarkTraffic
from repro.traffic.synthetic import PATTERNS, HotspotTraffic, SyntheticTraffic
from repro.traffic.trace import TraceRecorder, TraceTraffic, load_trace, save_trace

__all__ = [
    "CompositeTraffic",
    "Injection",
    "NullTraffic",
    "TrafficGenerator",
    "grid_shape",
    "ALL_PROFILES",
    "SPLASH2_PROFILES",
    "WCET_PROFILES",
    "BenchmarkProfile",
    "get_profile",
    "random_mix",
    "BenchmarkTraffic",
    "PATTERNS",
    "HotspotTraffic",
    "SyntheticTraffic",
    "TraceRecorder",
    "TraceTraffic",
    "load_trace",
    "save_trace",
]
