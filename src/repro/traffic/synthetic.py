"""Synthetic traffic patterns (uniform random and friends).

The paper's synthetic evaluation (Tables II/III) uses **uniform** traffic
at 0.1 / 0.2 / 0.3 *flits per cycle per port*.  Rates here are therefore
specified in flits/cycle/node and converted to packet injections using
the packet length; additional classic patterns (transpose, bit
complement, tornado, neighbor, shuffle, hotspot) are provided for the
topology/pattern extension studies.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.traffic.base import (
    Injection,
    TrafficGenerator,
    grid_shape,
    validate_rate,
)

#: A destination function: (src, rng) -> dst (may equal src; the caller
#: skips self-addressed picks).
DestinationFn = Callable[[int, np.random.Generator], int]


class SyntheticTraffic(TrafficGenerator):
    """Bernoulli packet injection with a configurable spatial pattern.

    Parameters
    ----------
    pattern:
        One of :data:`PATTERNS` (``"uniform"`` is the paper's).
    num_nodes:
        Tile count.
    flit_rate:
        Offered load in flits/cycle/node, as in the paper's tables.
    packet_length:
        Flits per packet; the per-cycle packet-injection probability is
        ``flit_rate / packet_length``.
    seed:
        RNG seed (freeze per scenario for policy-to-policy comparisons).

    Example
    -------
    >>> gen = SyntheticTraffic("uniform", num_nodes=4, flit_rate=0.4,
    ...                        packet_length=4, seed=7)
    >>> all(0 <= s < 4 and 0 <= d < 4 and s != d
    ...     for c in range(200) for (s, d, _l) in gen.inject(c))
    True
    """

    def __init__(
        self,
        pattern: str,
        num_nodes: int,
        flit_rate: float,
        packet_length: int = 4,
        seed: int = 1,
    ) -> None:
        super().__init__(num_nodes)
        if pattern not in PATTERNS:
            known = ", ".join(sorted(PATTERNS))
            raise ValueError(f"unknown pattern {pattern!r}; known: {known}")
        if packet_length < 1:
            raise ValueError(f"packet_length must be >= 1, got {packet_length}")
        validate_rate(flit_rate, "flit_rate")
        self.pattern = pattern
        self.name = pattern
        self.flit_rate = flit_rate
        self.packet_length = packet_length
        self.packet_rate = flit_rate / packet_length
        if self.packet_rate > 1.0:
            raise ValueError(
                f"flit_rate {flit_rate} with packet_length {packet_length} "
                f"implies more than one packet per cycle per node"
            )
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._dest_fn = _build_destination_fn(pattern, num_nodes)
        # Reusable scout generator (see next_injection_cycle): seeding a
        # fresh bit generator pulls OS entropy on every construction,
        # which would dominate the scout's cost in fast-forwarded runs.
        self._scout_rng: Optional[np.random.Generator] = None

    def inject(self, cycle: int) -> List[Injection]:
        rng = self._rng
        draws = rng.random(self.num_nodes)
        out: List[Injection] = []
        for src in np.nonzero(draws < self.packet_rate)[0]:
            src = int(src)
            dst = self._dest_fn(src, rng)
            if dst == src:
                continue  # pattern maps the node onto itself: no packet
            out.append((src, dst, None))
        return out

    def next_injection_cycle(self, cycle: int, horizon: int = 1 << 14):
        """First upcoming cycle with a packet draw (scout, non-consuming).

        A *shadow* copy of the bit generator replays the stream, so the
        real RNG position is untouched — the fast-forward engine may
        jump to an earlier pinned event (sensor sample, policy epoch)
        and must then draw the scouted cycles itself, in order.  The
        Bernoulli draws (``rng.random(num_nodes)`` per cycle) are
        scanned in vectorized chunks; destination draws only happen on
        hits, which by construction do not occur before the returned
        cycle.  Beyond ``horizon`` scanned cycles the bound is returned
        as-is (the contract only promises no injection in between).
        """
        if self.packet_rate <= 0.0:
            return math.inf
        real = self._rng.bit_generator
        shadow = self._scout_rng
        if shadow is None or type(shadow.bit_generator) is not type(real):
            shadow = self._scout_rng = np.random.Generator(type(real)())
        shadow.bit_generator.state = real.state
        rate = self.packet_rate
        nodes = self.num_nodes
        scanned = 0
        # Geometric chunks: the expected gap is 1/(1-(1-rate)^nodes)
        # cycles, usually far below a flat 256, so start small and grow.
        # Chunking never changes the answer — Generator.random consumes
        # the stream identically regardless of call boundaries.
        chunk = 128
        while scanned < horizon:
            n = min(chunk, horizon - scanned)
            hits = np.nonzero((shadow.random((n, nodes)) < rate).any(axis=1))[0]
            if hits.size:
                return cycle + scanned + int(hits[0])
            scanned += n
            chunk = min(chunk * 4, 4096)
        return cycle + scanned

    def advance(self, cycles: int) -> None:
        """Consume the Bernoulli draws of ``cycles`` injection-free
        cycles (bulk generation follows the same stream order as
        per-cycle :meth:`inject` calls)."""
        rng = self._rng
        nodes = self.num_nodes
        remaining = cycles
        while remaining > 0:
            n = min(remaining, 1 << 16)
            rng.random((n, nodes))
            remaining -= n

    def describe(self) -> str:
        return f"{self.pattern}(rate={self.flit_rate} flits/cyc/node)"


class HotspotTraffic(SyntheticTraffic):
    """Uniform traffic with a probability mass concentrated on hotspots.

    Models memory-controller-style concentration: with probability
    ``hotspot_fraction`` the destination is drawn from ``hotspots``,
    otherwise uniformly from all other nodes.
    """

    def __init__(
        self,
        num_nodes: int,
        flit_rate: float,
        hotspots: Sequence[int],
        hotspot_fraction: float = 0.5,
        packet_length: int = 4,
        seed: int = 1,
    ) -> None:
        super().__init__("uniform", num_nodes, flit_rate, packet_length, seed)
        hotspots = list(hotspots)
        if not hotspots:
            raise ValueError("hotspot traffic needs at least one hotspot node")
        for h in hotspots:
            if not 0 <= h < num_nodes:
                raise ValueError(f"hotspot {h} out of range [0, {num_nodes})")
        if not 0.0 <= hotspot_fraction <= 1.0:
            raise ValueError(f"hotspot_fraction must be in [0, 1], got {hotspot_fraction}")
        self.pattern = "hotspot"
        self.name = "hotspot"
        self.hotspots = hotspots
        self.hotspot_fraction = hotspot_fraction
        uniform = self._dest_fn

        def dest(src: int, rng: np.random.Generator) -> int:
            if rng.random() < self.hotspot_fraction:
                return int(self.hotspots[int(rng.integers(len(self.hotspots)))])
            return uniform(src, rng)

        self._dest_fn = dest

    def describe(self) -> str:
        return (
            f"hotspot(rate={self.flit_rate}, nodes={self.hotspots}, "
            f"fraction={self.hotspot_fraction})"
        )


# ----------------------------------------------------------------------
# Destination functions
# ----------------------------------------------------------------------
def _uniform(num_nodes: int) -> DestinationFn:
    def dest(src: int, rng: np.random.Generator) -> int:
        dst = int(rng.integers(num_nodes - 1))
        return dst if dst < src else dst + 1  # uniform over nodes != src

    return dest


def _transpose(num_nodes: int) -> DestinationFn:
    width, height = grid_shape(num_nodes)

    def dest(src: int, rng: np.random.Generator) -> int:
        x, y = src % width, src // width
        # Matrix transpose needs a square grid; clamp into range otherwise.
        tx, ty = y % width, x % height
        return ty * width + tx

    return dest


def _bit_complement(num_nodes: int) -> DestinationFn:
    mask = num_nodes - 1
    if num_nodes & mask:
        raise ValueError("bit_complement requires a power-of-two node count")

    def dest(src: int, rng: np.random.Generator) -> int:
        return (~src) & mask

    return dest


def _bit_reverse(num_nodes: int) -> DestinationFn:
    if num_nodes & (num_nodes - 1):
        raise ValueError("bit_reverse requires a power-of-two node count")
    bits = num_nodes.bit_length() - 1

    def dest(src: int, rng: np.random.Generator) -> int:
        out = 0
        for b in range(bits):
            if src & (1 << b):
                out |= 1 << (bits - 1 - b)
        return out

    return dest


def _shuffle(num_nodes: int) -> DestinationFn:
    if num_nodes & (num_nodes - 1):
        raise ValueError("shuffle requires a power-of-two node count")
    bits = num_nodes.bit_length() - 1
    mask = num_nodes - 1

    def dest(src: int, rng: np.random.Generator) -> int:
        return ((src << 1) | (src >> (bits - 1))) & mask

    return dest


def _tornado(num_nodes: int) -> DestinationFn:
    width, height = grid_shape(num_nodes)

    def dest(src: int, rng: np.random.Generator) -> int:
        x, y = src % width, src // width
        return y * width + (x + width // 2) % width

    return dest


def _neighbor(num_nodes: int) -> DestinationFn:
    width, height = grid_shape(num_nodes)

    def dest(src: int, rng: np.random.Generator) -> int:
        x, y = src % width, src // width
        return y * width + (x + 1) % width

    return dest


#: Registered pattern builders.
PATTERNS: Dict[str, Callable[[int], DestinationFn]] = {
    "uniform": _uniform,
    "transpose": _transpose,
    "bit_complement": _bit_complement,
    "bit_reverse": _bit_reverse,
    "shuffle": _shuffle,
    "tornado": _tornado,
    "neighbor": _neighbor,
}


def _build_destination_fn(pattern: str, num_nodes: int) -> DestinationFn:
    return PATTERNS[pattern](num_nodes)
