"""Benchmark-profile ("real") traffic: the GEM5/SPLASH2 substitution.

:class:`BenchmarkTraffic` turns per-core :class:`BenchmarkProfile`\\ s
into a deterministic packet stream:

* each core alternates ON/OFF states with geometrically distributed
  durations (Markov-modulated burstiness),
* while ON, it issues requests whose destinations mix neighbor locality,
  a few hot L2 banks and uniform bank interleaving, and
* each request can trigger a MOESI-style data response from the
  destination after a fixed L2 service delay.

The per-flit offered load of a profile is preserved: the request packet
rate is scaled so requests + responses together average the profile's
``on_rate`` flits/cycle while bursting.  The injector issues at most one
request per core per cycle, so a profile hotter than that ceiling is
clamped — and logs a warning, since the preservation guarantee no longer
holds for that core.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.telemetry.log import get_logger
from repro.traffic.base import Injection, TrafficGenerator, grid_shape
from repro.traffic.benchmarks import BenchmarkProfile, random_mix

log = get_logger("traffic")

#: Cycles an L2 bank takes to turn a request into a response.
DEFAULT_SERVICE_DELAY = 20


class _CoreState:
    """Mutable per-core Markov state."""

    __slots__ = ("profile", "rng", "on", "remaining", "request_rate", "clamped")

    def __init__(self, profile: BenchmarkProfile, seed: int) -> None:
        self.profile = profile
        self.rng = np.random.default_rng(seed)
        self.on = False
        self.remaining = 0
        # Requests + expected responses must average on_rate flits/cycle.
        flits_per_request = (
            profile.request_length
            + profile.reply_probability * profile.response_length
        )
        raw_rate = profile.on_rate / flits_per_request
        # One request per core per cycle is the injector's hard ceiling;
        # a hotter profile silently delivered less than its on_rate until
        # the clamp was surfaced (the caller warns once per profile).
        self.clamped = raw_rate > 1.0
        self.request_rate = min(1.0, raw_rate)

    def advance_state(self) -> None:
        """Tick the ON/OFF Markov chain by one cycle."""
        if self.remaining > 0:
            self.remaining -= 1
            return
        if self.on:
            self.on = False
            self.remaining = int(self.rng.geometric(1.0 / self.profile.idle_mean))
        else:
            self.on = True
            self.remaining = int(self.rng.geometric(1.0 / self.profile.burst_mean))


class BenchmarkTraffic(TrafficGenerator):
    """Deterministic request/response traffic from per-core profiles.

    Parameters
    ----------
    profiles:
        One :class:`BenchmarkProfile` per core (see
        :func:`repro.traffic.benchmarks.random_mix`).
    seed:
        Master seed; each core derives an independent stream from it.
    hot_banks:
        Node ids of the hot L2 banks (defaults to the mesh corners).
    service_delay:
        Cycles between a request's injection and its response.
    request_vnet, response_vnet:
        Virtual networks carrying requests and responses.  MOESI-style
        protocols put them on separate vnets to avoid protocol deadlock
        (paper Table I); both default to vnet 0 for single-vnet
        platforms.
    """

    name = "benchmark-mix"

    def __init__(
        self,
        profiles: Sequence[BenchmarkProfile],
        seed: int = 1,
        hot_banks: Optional[Sequence[int]] = None,
        service_delay: int = DEFAULT_SERVICE_DELAY,
        request_vnet: int = 0,
        response_vnet: int = 0,
    ) -> None:
        super().__init__(len(profiles))
        if service_delay < 1:
            raise ValueError(f"service_delay must be >= 1, got {service_delay}")
        if request_vnet < 0 or response_vnet < 0:
            raise ValueError("vnet ids must be non-negative")
        self.request_vnet = request_vnet
        self.response_vnet = response_vnet
        self.profiles = list(profiles)
        self.seed = seed
        self.service_delay = service_delay
        self.width, self.height = grid_shape(self.num_nodes)
        if hot_banks is None:
            hot_banks = sorted(
                {0, self.width - 1, self.num_nodes - self.width, self.num_nodes - 1}
            )
        self.hot_banks = [b for b in hot_banks if 0 <= b < self.num_nodes]
        if not self.hot_banks:
            raise ValueError("hot_banks must contain at least one valid node")
        self._cores = [
            _CoreState(profile, seed * 1_000_003 + node)
            for node, profile in enumerate(self.profiles)
        ]
        for node, core in enumerate(self._cores):
            if core.clamped:
                # The profile asks for more flits/cycle than one request
                # per cycle can carry: the ON-state offered load is
                # capped, so the module's "per-flit offered load is
                # preserved" guarantee does not hold for this core.
                flits_per_request = (
                    core.profile.request_length
                    + core.profile.reply_probability * core.profile.response_length
                )
                log.warning(
                    "core %d profile %r: on_rate %.3f flits/cycle exceeds "
                    "the 1-request/cycle injector ceiling; ON-state "
                    "offered load clamped to %.3f flits/cycle",
                    node, core.profile.name, core.profile.on_rate,
                    flits_per_request,
                )
        #: Pending responses: (due_cycle, order, src, dst, length).
        self._responses: List[Tuple[int, int, int, int, int]] = []
        self._response_seq = 0

    @classmethod
    def random(
        cls,
        num_cores: int,
        mix_seed: int,
        traffic_seed: Optional[int] = None,
        **kwargs,
    ) -> "BenchmarkTraffic":
        """Build a random benchmark mix (one profile per core)."""
        profiles = random_mix(num_cores, mix_seed)
        return cls(profiles, seed=traffic_seed if traffic_seed is not None else mix_seed, **kwargs)

    # ------------------------------------------------------------------
    def _pick_destination(self, src: int, core: _CoreState) -> int:
        profile = core.profile
        rng = core.rng
        r = float(rng.random())
        if r < profile.locality_fraction:
            return self._neighbor_of(src, rng)
        if r < profile.locality_fraction + profile.hotspot_fraction:
            candidates = [b for b in self.hot_banks if b != src] or [
                (src + 1) % self.num_nodes
            ]
            return int(candidates[int(rng.integers(len(candidates)))])
        dst = int(rng.integers(self.num_nodes - 1))
        return dst if dst < src else dst + 1

    def _neighbor_of(self, src: int, rng: np.random.Generator) -> int:
        x, y = src % self.width, src // self.width
        options = []
        if x + 1 < self.width:
            options.append(src + 1)
        if x > 0:
            options.append(src - 1)
        if y + 1 < self.height:
            options.append(src + self.width)
        if y > 0:
            options.append(src - self.width)
        if not options:
            return (src + 1) % self.num_nodes
        return int(options[int(rng.integers(len(options)))])

    @property
    def _single_vnet(self) -> bool:
        return self.request_vnet == 0 and self.response_vnet == 0

    def inject(self, cycle: int) -> List[Injection]:
        out: List[Injection] = []
        single = self._single_vnet
        # Due MOESI responses first (they were requested service_delay ago).
        while self._responses and self._responses[0][0] <= cycle:
            _, _, src, dst, length = heapq.heappop(self._responses)
            if single:
                out.append((src, dst, length))
            else:
                out.append((src, dst, length, self.response_vnet))
        for node, core in enumerate(self._cores):
            core.advance_state()
            if not core.on:
                continue
            if float(core.rng.random()) >= core.request_rate:
                continue
            profile = core.profile
            dst = self._pick_destination(node, core)
            if single:
                out.append((node, dst, profile.request_length))
            else:
                out.append((node, dst, profile.request_length, self.request_vnet))
            if float(core.rng.random()) < profile.reply_probability:
                heapq.heappush(
                    self._responses,
                    (
                        cycle + self.service_delay,
                        self._response_seq,
                        dst,
                        node,
                        profile.response_length,
                    ),
                )
                self._response_seq += 1
        return out

    def describe(self) -> str:
        names = ",".join(p.name for p in self.profiles)
        return f"benchmark-mix([{names}], seed={self.seed})"
