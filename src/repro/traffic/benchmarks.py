"""Benchmark traffic profiles standing in for the paper's real traffic.

The paper drives its "real traffic" evaluation (Table IV) with SPLASH2
and WCET benchmarks running on GEM5 Alpha cores under a MOESI protocol.
Full-system simulation is not reproducible here (no GEM5, no Alpha
binaries), so each benchmark is replaced by a **traffic profile**: a
Markov-modulated on/off request/response workload whose parameters
capture the three statistics that actually drive per-VC NBTI duty
cycles —

* *offered load* (how often the tile talks),
* *burstiness* (how the load clusters in time), and
* *spatial shape* (locality vs. distributed L2-bank access vs. hot
  banks, plus MOESI-style data responses).

The numbers below are qualitative characterizations of the well-known
behaviour of each benchmark (e.g. OCEAN and FFT are memory-bound and
bursty, WATER is compute-bound and quiet, WCET kernels are tiny periodic
loops) — see DESIGN.md §3 for why this substitution preserves the
paper's Table IV observations.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple


@dataclasses.dataclass(frozen=True)
class BenchmarkProfile:
    """Markov-modulated on/off traffic profile of one benchmark.

    Attributes
    ----------
    name, suite:
        Benchmark identifier and its suite (``"splash2"`` or ``"wcet"``).
    on_rate:
        Offered load in flits/cycle while the burst (ON) state lasts.
    burst_mean, idle_mean:
        Geometric mean lengths (cycles) of the ON and OFF periods.
    locality_fraction:
        Probability a request goes to a mesh neighbor (producer/consumer
        sharing).
    hotspot_fraction:
        Probability a request goes to one of a few hot L2 banks.
    reply_probability:
        Probability a request triggers a MOESI-style data response from
        the destination back to the requester.
    request_length, response_length:
        Flits per control request and per data response.
    """

    name: str
    suite: str
    on_rate: float
    burst_mean: float
    idle_mean: float
    locality_fraction: float = 0.2
    hotspot_fraction: float = 0.2
    reply_probability: float = 0.7
    request_length: int = 1
    response_length: int = 4

    def __post_init__(self) -> None:
        if not 0.0 < self.on_rate <= 1.0:
            raise ValueError(f"on_rate must be in (0, 1], got {self.on_rate}")
        if self.burst_mean < 1.0 or self.idle_mean < 1.0:
            raise ValueError("burst_mean and idle_mean must be >= 1 cycle")
        if not 0.0 <= self.locality_fraction + self.hotspot_fraction <= 1.0:
            raise ValueError("locality + hotspot fractions must stay within [0, 1]")
        if not 0.0 <= self.reply_probability <= 1.0:
            raise ValueError(f"reply_probability must be in [0, 1], got {self.reply_probability}")
        if self.request_length < 1 or self.response_length < 1:
            raise ValueError("packet lengths must be >= 1 flit")

    @property
    def duty(self) -> float:
        """Fraction of time the profile is in its ON state."""
        return self.burst_mean / (self.burst_mean + self.idle_mean)

    @property
    def average_rate(self) -> float:
        """Long-run offered load in flits/cycle/node."""
        return self.on_rate * self.duty


def _p(name, suite, on_rate, burst, idle, loc=0.2, hot=0.2, reply=0.7) -> BenchmarkProfile:
    return BenchmarkProfile(
        name=name, suite=suite, on_rate=on_rate,
        burst_mean=burst, idle_mean=idle,
        locality_fraction=loc, hotspot_fraction=hot, reply_probability=reply,
    )


#: SPLASH2 profiles: scientific kernels, phase-structured, cache-miss
#: driven bursts to distributed L2 banks.
SPLASH2_PROFILES: Dict[str, BenchmarkProfile] = {
    p.name: p
    for p in (
        _p("barnes", "splash2", on_rate=0.20, burst=220, idle=600, loc=0.35, hot=0.10),
        _p("fmm", "splash2", on_rate=0.17, burst=260, idle=700, loc=0.30, hot=0.10),
        _p("ocean", "splash2", on_rate=0.50, burst=700, idle=350, loc=0.45, hot=0.15),
        _p("radiosity", "splash2", on_rate=0.24, burst=300, idle=550, loc=0.20, hot=0.25),
        _p("raytrace", "splash2", on_rate=0.27, burst=180, idle=400, loc=0.10, hot=0.30),
        _p("water-nsq", "splash2", on_rate=0.13, burst=150, idle=900, loc=0.30, hot=0.10),
        _p("water-sp", "splash2", on_rate=0.12, burst=150, idle=1000, loc=0.35, hot=0.10),
        _p("lu", "splash2", on_rate=0.37, burst=500, idle=450, loc=0.40, hot=0.20),
        _p("fft", "splash2", on_rate=0.55, burst=400, idle=280, loc=0.05, hot=0.20),
        _p("radix", "splash2", on_rate=0.60, burst=450, idle=250, loc=0.05, hot=0.25),
        _p("cholesky", "splash2", on_rate=0.34, burst=350, idle=420, loc=0.30, hot=0.20),
        _p("volrend", "splash2", on_rate=0.20, burst=200, idle=600, loc=0.15, hot=0.30),
    )
}

#: WCET (Mälardalen) profiles: tiny embedded kernels — low, periodic
#: traffic dominated by instruction/data fetches from one home bank.
WCET_PROFILES: Dict[str, BenchmarkProfile] = {
    p.name: p
    for p in (
        _p("adpcm", "wcet", on_rate=0.08, burst=80, idle=800, loc=0.10, hot=0.60, reply=0.9),
        _p("bsort", "wcet", on_rate=0.12, burst=120, idle=600, loc=0.10, hot=0.55, reply=0.9),
        _p("crc", "wcet", on_rate=0.06, burst=60, idle=1000, loc=0.10, hot=0.60, reply=0.9),
        _p("edn", "wcet", on_rate=0.09, burst=100, idle=750, loc=0.10, hot=0.55, reply=0.9),
        _p("fir", "wcet", on_rate=0.08, burst=70, idle=850, loc=0.10, hot=0.60, reply=0.9),
        _p("jfdctint", "wcet", on_rate=0.11, burst=110, idle=650, loc=0.10, hot=0.55, reply=0.9),
        _p("matmult", "wcet", on_rate=0.15, burst=200, idle=550, loc=0.10, hot=0.50, reply=0.9),
        _p("ndes", "wcet", on_rate=0.08, burst=90, idle=950, loc=0.10, hot=0.60, reply=0.9),
        _p("nsichneu", "wcet", on_rate=0.09, burst=100, idle=800, loc=0.10, hot=0.55, reply=0.9),
    )
}

#: Union of both suites (the paper randomly mixes across suites).
ALL_PROFILES: Dict[str, BenchmarkProfile] = {**SPLASH2_PROFILES, **WCET_PROFILES}


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a profile by benchmark name."""
    try:
        return ALL_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(ALL_PROFILES))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None


def random_mix(num_cores: int, seed: int) -> List[BenchmarkProfile]:
    """Randomly pick one benchmark per core (paper Sec. IV-C).

    Deterministic for a fixed seed; draws from the union of SPLASH2 and
    WCET with replacement, like the paper's per-iteration mixes.
    """
    import numpy as np

    if num_cores < 1:
        raise ValueError(f"num_cores must be >= 1, got {num_cores}")
    rng = np.random.default_rng(seed)
    names = sorted(ALL_PROFILES)
    picks = rng.integers(len(names), size=num_cores)
    return [ALL_PROFILES[names[int(i)]] for i in picks]
