"""Traffic trace recording and replay.

Any generator can be wrapped in a :class:`TraceRecorder` to capture the
exact packet stream it produced; the resulting trace can be saved to a
simple CSV-like text format and replayed later with :class:`TraceTraffic`
— e.g. to feed the *same* traffic to different router configurations, or
to import externally produced traces (one line per packet:
``cycle,src,dst,length``).
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, List, Optional, Tuple, Union

from repro.traffic.base import Injection, TrafficGenerator

#: One trace record: (cycle, src, dst, length) or, on multi-vnet
#: platforms, (cycle, src, dst, length, vnet).
TraceRecord = Tuple[int, ...]


class TraceRecorder(TrafficGenerator):
    """Pass-through wrapper that records every injection it forwards."""

    name = "trace-recorder"

    def __init__(self, inner: TrafficGenerator, default_length: int = 4) -> None:
        super().__init__(inner.num_nodes)
        if default_length < 1:
            raise ValueError(f"default_length must be >= 1, got {default_length}")
        self.inner = inner
        self.default_length = default_length
        self.records: List[TraceRecord] = []

    def inject(self, cycle: int) -> List[Injection]:
        injections = self.inner.inject(cycle)
        for injection in injections:
            src, dst, length = injection[0], injection[1], injection[2]
            vnet = injection[3] if len(injection) > 3 else 0
            length = length if length is not None else self.default_length
            if vnet:
                self.records.append((cycle, src, dst, length, vnet))
            else:
                self.records.append((cycle, src, dst, length))
        return injections

    def save(self, path: Union[str, Path]) -> None:
        """Write the recorded trace as ``cycle,src,dst,length`` lines."""
        save_trace(self.records, path)

    def describe(self) -> str:
        return f"record({self.inner.describe()})"


class TraceTraffic(TrafficGenerator):
    """Replays a list of trace records, in non-decreasing cycle order."""

    name = "trace"

    def __init__(self, records: Iterable[TraceRecord], num_nodes: int) -> None:
        super().__init__(num_nodes)
        self.records = sorted(records)
        for record in self.records:
            if len(record) not in (4, 5):
                raise ValueError(f"trace record must have 4 or 5 fields: {record}")
            cycle, src, dst, length = record[:4]
            if cycle < 0:
                raise ValueError(f"negative cycle in trace record {record}")
            if not (0 <= src < num_nodes and 0 <= dst < num_nodes):
                raise ValueError(f"node out of range in trace record {record}")
            if src == dst:
                raise ValueError(f"self-addressed trace record {record}")
            if length < 1:
                raise ValueError(f"bad length in trace record {record}")
            if len(record) == 5 and record[4] < 0:
                raise ValueError(f"negative vnet in trace record {record}")
        self._cursor = 0

    @classmethod
    def load(cls, path: Union[str, Path], num_nodes: int) -> "TraceTraffic":
        """Load a trace saved by :func:`save_trace`."""
        return cls(load_trace(path), num_nodes)

    def inject(self, cycle: int) -> List[Injection]:
        out: List[Injection] = []
        records = self.records
        while self._cursor < len(records) and records[self._cursor][0] <= cycle:
            record = records[self._cursor]
            if record[0] == cycle:
                out.append(tuple(record[1:]))
            # Records before the current cycle (e.g. replay started late)
            # are skipped rather than bunched, preserving shape.
            self._cursor += 1
        return out

    def reset(self) -> None:
        """Rewind the replay to the first record."""
        self._cursor = 0

    @property
    def exhausted(self) -> bool:
        """True once every record has been replayed (or skipped)."""
        return self._cursor >= len(self.records)

    def describe(self) -> str:
        return f"trace({len(self.records)} packets)"


def save_trace(records: Iterable[TraceRecord], path: Union[str, Path]) -> None:
    """Serialize records as ``cycle,src,dst,length[,vnet]`` text lines."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("# cycle,src,dst,length[,vnet]\n")
        for record in records:
            fh.write(",".join(str(field) for field in record) + "\n")


def load_trace(path: Union[str, Path]) -> List[TraceRecord]:
    """Parse a trace file produced by :func:`save_trace`."""
    records: List[TraceRecord] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(",")
            if len(parts) not in (4, 5):
                raise ValueError(
                    f"{path}:{lineno}: expected 4 or 5 fields, got {len(parts)}"
                )
            try:
                fields = tuple(int(p) for p in parts)
            except ValueError:
                raise ValueError(f"{path}:{lineno}: non-integer field in {line!r}") from None
            records.append(fields)
    return records
