"""Traffic-generator interface consumed by the network stepper.

A traffic generator is asked once per cycle for the packets created that
cycle, as ``(src, dst, length)`` triples (``length=None`` means "use the
configured default packet length").  Generators must be deterministic
given their seed so that scenarios are exactly reproducible across
policies — the paper compares policies on identical traffic.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Tuple

#: One packet to create this cycle: ``(src, dst, length)`` with
#: ``length=None`` meaning "use the configured default", optionally
#: extended to ``(src, dst, length, vnet)`` on multi-vnet platforms
#: (plain 3-tuples target vnet 0).
Injection = Tuple[int, ...]


class TrafficGenerator:
    """Base class: subclasses implement :meth:`inject`."""

    #: Short name used in tables and configs.
    name: str = "abstract"

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 2:
            raise ValueError(f"traffic needs >= 2 nodes, got {num_nodes}")
        self.num_nodes = num_nodes

    def inject(self, cycle: int) -> List[Injection]:
        """Packets created at ``cycle`` (possibly empty)."""
        raise NotImplementedError

    def next_injection_cycle(self, cycle: int) -> Optional[float]:
        """A cycle ``t >= cycle`` with no injection anywhere in
        ``[cycle, t)``, *without* consuming the generator's RNG stream.

        The contract is a lower bound: ``t`` need not itself inject (a
        scan-horizon cap is fine) — the caller simply simulates ``t``
        and asks again.  ``math.inf`` means the generator will never
        inject again.  The base class returns ``None``: *unsupported* —
        the network then steps every cycle (fast-forward disabled).
        Generators that implement this must also implement
        :meth:`advance`.
        """
        return None

    def advance(self, cycles: int) -> None:
        """Consume the RNG draws of ``cycles`` injection-free cycles.

        Called by the fast-forward engine instead of ``cycles``
        individual :meth:`inject` calls, so the stream position stays
        byte-identical to per-cycle stepping.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support fast-forward"
        )

    def describe(self) -> str:
        """One-line description for experiment reports."""
        return self.name


def grid_shape(num_nodes: int) -> Tuple[int, int]:
    """(width, height) of the squarest grid factorization of a node count.

    Matches :func:`repro.noc.topology.build_topology`'s mesh shape so
    that coordinate-based patterns (transpose, tornado...) line up with
    the simulated topology.

    >>> grid_shape(16)
    (4, 4)
    >>> grid_shape(8)
    (4, 2)
    """
    best = 1
    d = 1
    while d * d <= num_nodes:
        if num_nodes % d == 0:
            best = d
        d += 1
    height = best
    width = num_nodes // best
    return (width, height)


def validate_rate(rate: float, name: str = "injection_rate") -> float:
    """Validate a per-node-per-cycle packet/flit rate in [0, 1]."""
    if not 0.0 <= rate <= 1.0 or math.isnan(rate):
        raise ValueError(f"{name} must be in [0, 1], got {rate}")
    return rate


class CompositeTraffic(TrafficGenerator):
    """Superposition of several generators over the same node set."""

    name = "composite"

    def __init__(self, generators: Iterable[TrafficGenerator]) -> None:
        generators = list(generators)
        if not generators:
            raise ValueError("composite traffic needs at least one generator")
        nodes = {g.num_nodes for g in generators}
        if len(nodes) != 1:
            raise ValueError(f"generators disagree on num_nodes: {sorted(nodes)}")
        super().__init__(generators[0].num_nodes)
        self.generators = generators

    def inject(self, cycle: int) -> List[Injection]:
        out: List[Injection] = []
        for gen in self.generators:
            out.extend(gen.inject(cycle))
        return out

    def next_injection_cycle(self, cycle: int) -> Optional[float]:
        """Earliest bound over the children (None if any is unsupported)."""
        bounds = [g.next_injection_cycle(cycle) for g in self.generators]
        if any(b is None for b in bounds):
            return None
        return min(bounds)

    def advance(self, cycles: int) -> None:
        for gen in self.generators:
            gen.advance(cycles)

    def describe(self) -> str:
        return " + ".join(g.describe() for g in self.generators)


class NullTraffic(TrafficGenerator):
    """A silent network (useful for gating/recovery unit tests)."""

    name = "null"

    def inject(self, cycle: int) -> List[Injection]:
        return []

    def next_injection_cycle(self, cycle: int) -> float:
        return math.inf

    def advance(self, cycles: int) -> None:
        pass  # no RNG stream to keep in sync
